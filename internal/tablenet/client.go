package tablenet

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tables"
)

// ClientOptions tune Dial; the zero value (and a nil pointer) picks the
// defaults.
type ClientOptions struct {
	// Conns bounds the connection pool (concurrent in-flight requests);
	// 0 means DefaultConns. The first connection is dialed eagerly (the
	// handshake is what validates the server); the rest are dialed on
	// demand as concurrency requires.
	Conns int
	// DialTimeout bounds each dial+handshake; 0 means 5 s.
	DialTimeout time.Duration
	// CacheKeys is the hot-key cache capacity in entries (20 bytes
	// each); 0 means DefaultCacheKeys, negative disables the key cache
	// and its miss coalescing. The cache is correct for the client's
	// lifetime because the handshake pins one immutable table
	// generation: a reconnect onto different tables fails loudly instead
	// of poisoning the cache.
	CacheKeys int
	// LevelCacheBytes is the byte budget of the immutable level-block
	// cache; 0 means DefaultLevelCacheBytes, negative disables it.
	LevelCacheBytes int64
	// Retry governs how transport failures (dial errors, closed or
	// reset connections, per-attempt timeouts, corrupted frames) are
	// converted into fresh attempts with capped exponential backoff;
	// the zero value picks the defaults. See RetryPolicy.
	Retry RetryPolicy
	// Admission selects the hot-key cache's insertion policy. The zero
	// value is AdmissionTinyLFU — frequency-gated admission that keeps
	// the recurring direct-lookup working set resident under floods of
	// one-shot beyond-horizon scan keys (see admission.go). AdmissionAll
	// restores unconditional insert-on-miss.
	Admission AdmissionPolicy
}

// AdmissionPolicy selects how the hot-key cache decides whether a
// fetched miss is worth caching.
type AdmissionPolicy int

const (
	// AdmissionTinyLFU (the default) admits a new key only when its
	// recent frequency — tracked in a 4-bit count-min sketch with
	// periodic halving — beats the entry it would evict.
	AdmissionTinyLFU AdmissionPolicy = iota
	// AdmissionAll inserts every fetched result unconditionally.
	AdmissionAll
)

// DefaultConns is the default connection-pool bound.
const DefaultConns = 4

// DefaultCacheKeys is the default hot-key cache capacity. Sized (20 MiB
// at 20 B/entry) to hold the full candidate-key working set of repeated
// meet-in-the-middle scans at k = 6, not just the direct-lookup keys:
// warm scans then resolve entirely client-side.
const DefaultCacheKeys = 1 << 20

// DefaultLevelCacheBytes is the default level-block cache budget —
// enough to retain every level key range of a k = 6 table set (≈13 MiB),
// so repeated scans stop touching the wire for level iteration at all.
const DefaultLevelCacheBytes = 32 << 20

// Client speaks the tablenet protocol to one shard server and exposes it
// as a tables.Backend. Safe for concurrent use: requests are
// multiplexed over a bounded pool of request/response connections.
//
// The client is tiered: immutable results are cached (a sharded hot-key
// cache for lookups, an aligned-block cache for level key ranges) and
// identical concurrent misses are coalesced into one round trip, so a
// warm client answers most reads without touching the network. See
// CacheStats for the counters.
type Client struct {
	addr   string
	opts   ClientOptions
	meta   tables.Meta
	retry  RetryPolicy
	jitter *jitterSource

	// rangeLo/rangeHi is the owned key range the first hello pinned —
	// [0, tables.RangeSpace) for a full store. Every reconnect must
	// advertise the same range or dialConn refuses with ErrOwnership: a
	// shard silently remounted with a different split file must not serve
	// through a client wired for its old position.
	rangeLo, rangeHi uint64
	// draining tracks the shard's latest announced drain state, learned
	// from hellos and ping responses; the router reads it to steer new
	// sub-batches to siblings.
	draining            atomic.Bool
	ownershipMismatches atomic.Uint64

	// Tiered read path (nil when disabled via options).
	kcache   *hotKeyCache
	kflights *lookupFlights
	lcache   *levelCache

	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
	retries      atomic.Uint64

	// sem bounds the total number of live connections; idle holds the
	// ones not currently carrying a request.
	sem  chan struct{}
	idle chan *clientConn

	mu     sync.Mutex
	closed bool
	conns  map[*clientConn]struct{}
}

// clientConn is one pooled connection.
type clientConn struct {
	c   net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	buf []byte // response frame scratch
	req []byte // request frame scratch (header + payload, one write)
	// deadline is the socket deadline currently armed, tracked so the
	// uncancellable fast path can skip two deadline syscalls per round
	// trip while the stall backstop is still fresh.
	deadline time.Time
	// helloMeta is the Meta this connection's handshake declared; conns
	// after the first must agree with the client's.
	helloMeta tables.Meta
	dead      bool
}

// Dial connects to a shard server, performs the handshake, and returns
// the client. The server's Meta (table geometry, alphabet fingerprint)
// is learned from the hello frame; pass the client to core.FromBackend,
// which verifies the fingerprint against the query alphabet.
func Dial(addr string, opts *ClientOptions) (*Client, error) {
	o := ClientOptions{}
	if opts != nil {
		o = *opts
	}
	if o.Conns <= 0 {
		o.Conns = DefaultConns
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	cl := &Client{
		addr:   addr,
		opts:   o,
		retry:  o.Retry.withDefaults(),
		jitter: newJitterSource(o.Retry.Seed),
		sem:    make(chan struct{}, o.Conns),
		idle:   make(chan *clientConn, o.Conns),
		conns:  make(map[*clientConn]struct{}),
	}
	// Dial the first connection eagerly: its hello is the handshake that
	// validates the server before any query depends on it.
	cl.sem <- struct{}{}
	cc, err := cl.dialConn()
	if err != nil {
		<-cl.sem
		return nil, err
	}
	cl.meta = cc.helloMeta
	cl.meta.Source = fmt.Sprintf("tablenet(%s)", addr)
	// The caches are keyed by what the handshake pinned — one alphabet
	// fingerprint, one table geometry — and every later connection must
	// agree with it, so entries never need invalidation.
	if o.CacheKeys >= 0 {
		ck := o.CacheKeys
		if ck == 0 {
			ck = DefaultCacheKeys
		}
		cl.kcache = newHotKeyCache(ck, o.Admission == AdmissionTinyLFU)
		cl.kflights = newLookupFlights()
	}
	if o.LevelCacheBytes >= 0 {
		lb := o.LevelCacheBytes
		if lb == 0 {
			lb = DefaultLevelCacheBytes
		}
		cl.lcache = newLevelCache(cl.meta.LevelCounts, lb)
	}
	cl.idle <- cc
	return cl, nil
}

// dialTCP is the dial function dialConn uses — a package-level seam so
// tests can inject dial latency. (The deadline accounting dialConn
// guards is invisible over loopback, where dialing is instantaneous.)
var dialTCP = func(addr string, deadline time.Time) (net.Conn, error) {
	d := net.Dialer{Deadline: deadline}
	return d.Dial("tcp", addr)
}

// dialConn opens and handshakes one connection. The caller must already
// hold a sem slot. DialTimeout bounds dial AND hello together: one
// deadline is carved at entry and covers both, so a slow TCP connect
// cannot leave a fresh full budget for the handshake read (which would
// stretch the documented bound to ~2× DialTimeout).
func (cl *Client) dialConn() (*clientConn, error) {
	deadline := time.Now().Add(cl.opts.DialTimeout)
	c, err := dialTCP(cl.addr, deadline)
	if err != nil {
		return nil, fmt.Errorf("tablenet: dialing %s: %w", cl.addr, err)
	}
	cc := &clientConn{
		c:   c,
		br:  bufio.NewReaderSize(c, 1<<16),
		bw:  bufio.NewWriterSize(c, 1<<16),
		buf: make([]byte, 4096),
		req: make([]byte, 0, 4096),
	}
	c.SetReadDeadline(deadline)
	op, payload, err := readFrame(cc.br, cc.buf)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("tablenet: reading hello from %s: %w", cl.addr, err)
	}
	c.SetReadDeadline(time.Time{})
	if op != opHello {
		c.Close()
		return nil, fmt.Errorf("%w: expected hello, got opcode %#x", ErrProtocol, op)
	}
	h, err := parseHello(payload)
	if err != nil {
		c.Close()
		return nil, err
	}
	cc.helloMeta = h.Meta
	cl.draining.Store(h.Draining)
	// A reconnect that lands on a restarted server holding different
	// tables must fail loudly, not silently mix table generations (or
	// serve stale cache entries against new tables) — and one whose owned
	// key range moved must fail typed, so the router can refuse the
	// wiring instead of returning not-found for keys the fleet holds.
	cl.mu.Lock()
	first := cl.meta.LevelCounts == nil
	compatible := first || cl.meta.Compatible(h.Meta)
	sameRange := first || (cl.rangeLo == h.RangeLo && cl.rangeHi == h.RangeHi)
	if first {
		cl.rangeLo, cl.rangeHi = h.RangeLo, h.RangeHi
	}
	if compatible && sameRange && !cl.closed {
		cl.conns[cc] = struct{}{}
	}
	closed := cl.closed
	pinLo, pinHi := cl.rangeLo, cl.rangeHi
	cl.mu.Unlock()
	if closed {
		c.Close()
		return nil, fmt.Errorf("tablenet: client closed")
	}
	if !compatible {
		c.Close()
		return nil, fmt.Errorf("%w: server %s now serves a different table set", ErrProtocol, cl.addr)
	}
	if !sameRange {
		cl.ownershipMismatches.Add(1)
		c.Close()
		return nil, fmt.Errorf("%w: %s now advertises [%#x, %#x), handshake pinned [%#x, %#x)", ErrOwnership, cl.addr, h.RangeLo, h.RangeHi, pinLo, pinHi)
	}
	return cc, nil
}

// OwnedRange returns the key range the first hello pinned: the half-open
// [lo, hi) interval of high-32 Wang-hash space this shard owns.
func (cl *Client) OwnedRange() (lo, hi uint64) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.rangeLo, cl.rangeHi
}

// Draining reports the shard's last announced drain state (from its
// hello or a ping response).
func (cl *Client) Draining() bool { return cl.draining.Load() }

// OwnershipMismatches counts reconnects refused because the shard's
// advertised range no longer matched the pinned one.
func (cl *Client) OwnershipMismatches() uint64 { return cl.ownershipMismatches.Load() }

// Meta returns the table metadata learned during the handshake.
func (cl *Client) Meta() tables.Meta { return cl.meta }

// CacheStats snapshots the tiered read path's counters: cache hits and
// misses per tier, coalesced fetches, cache memory, and the wire bytes
// actually moved.
func (cl *Client) CacheStats() tables.CacheStats {
	st := tables.CacheStats{
		WireBytesRead:    cl.bytesRead.Load(),
		WireBytesWritten: cl.bytesWritten.Load(),
		WireRetries:      cl.retries.Load(),
	}
	if cl.kcache != nil {
		st.KeyHits = cl.kcache.hits.Load()
		st.KeyMisses = cl.kcache.misses.Load()
		st.CacheBytes += cl.kcache.bytes()
		st.AdmissionRejects = cl.kcache.rejects.Load()
	}
	if cl.kflights != nil {
		st.Coalesced += cl.kflights.coalesced.Load()
	}
	if cl.lcache != nil {
		st.LevelHits = cl.lcache.hits.Load()
		st.LevelMisses = cl.lcache.misses.Load()
		st.Coalesced += cl.lcache.coalesced.Load()
		st.CacheBytes += cl.lcache.bytes.Load()
	}
	return st
}

// get obtains a pooled connection, dialing a new one when the pool is
// under its bound, or waiting for an idle one otherwise. pooled reports
// that the connection was reused from the idle pool (and may therefore
// be stale — its peer could have restarted since the last request).
func (cl *Client) get(ctx context.Context) (cc *clientConn, pooled bool, err error) {
	select {
	case cc := <-cl.idle:
		return cc, true, nil
	default:
	}
	select {
	case cc := <-cl.idle:
		return cc, true, nil
	case cl.sem <- struct{}{}:
		cc, err := cl.dialConn()
		if err != nil {
			<-cl.sem
			return nil, false, err
		}
		return cc, false, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// put returns a healthy connection to the pool, or retires a dead one.
func (cl *Client) put(cc *clientConn) {
	if cc.dead {
		cl.retire(cc)
		return
	}
	cl.mu.Lock()
	closed := cl.closed
	cl.mu.Unlock()
	if closed {
		cl.retire(cc)
		return
	}
	cl.idle <- cc
}

func (cl *Client) retire(cc *clientConn) {
	cc.c.Close()
	cl.mu.Lock()
	delete(cl.conns, cc)
	cl.mu.Unlock()
	<-cl.sem
}

// maxStall bounds one round trip when the context carries no deadline
// of its own: a shard host that vanishes without RST (partition, frozen
// process) must not pin a pooled connection — and its caller's
// worker-pool slot — forever.
const maxStall = 2 * time.Minute

// roundTrip sends one request frame and decodes the response. encode
// (which may be nil) appends the request payload to the connection's
// pooled frame buffer, so the whole frame — length, opcode, payload —
// is laid out once and written with a single Write: no per-request
// buffer, no second copy.
//
// ctx is honoured through the connection's I/O deadlines: the tighter
// of the ctx deadline and the retry policy's per-attempt deadline
// (attemptDL; zero means none) bounds the exchange, plain cancellation
// interrupts it (context.AfterFunc fires an immediate deadline, waking
// any blocked read/write), and maxStall backstops requests with
// neither — armed lazily, so the uncancellable unbounded path skips
// the deadline syscalls while the backstop is fresh. On any error the
// connection is marked dead (request/response framing is lost).
func (cl *Client) roundTrip(ctx context.Context, cc *clientConn, op byte, attemptDL time.Time, encode func(dst []byte) []byte) (payload []byte, err error) {
	deadline, hasDeadline := ctx.Deadline()
	if !attemptDL.IsZero() && (!hasDeadline || attemptDL.Before(deadline)) {
		deadline, hasDeadline = attemptDL, true
	}
	if hasDeadline || ctx.Done() != nil {
		if !hasDeadline {
			deadline = time.Now().Add(maxStall)
		}
		cc.c.SetDeadline(deadline)
		// Force the next lazily-armed round trip to re-arm: this
		// deadline (or a late cancellation firing the AfterFunc after we
		// return) leaves the socket with a deadline the field knows
		// nothing about.
		cc.deadline = time.Time{}
		if ctx.Done() != nil {
			stop := context.AfterFunc(ctx, func() {
				cc.c.SetDeadline(time.Now())
			})
			defer stop()
		}
	} else if cc.deadline.IsZero() || time.Until(cc.deadline) < maxStall/2 {
		cc.deadline = time.Now().Add(maxStall)
		cc.c.SetDeadline(cc.deadline)
	}
	frame := append(cc.req[:0], 0, 0, 0, 0, 0, 0, 0, 0, op)
	if encode != nil {
		frame = encode(frame)
	}
	cc.req = frame[:0]
	if len(frame)-frameHeaderLen > maxFrameLen {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds cap", ErrProtocol, len(frame)-frameHeaderLen)
	}
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-frameHeaderLen))
	binary.LittleEndian.PutUint32(frame[4:], frameSum(frame[frameHeaderLen:]))
	// Count the frame when it is offered to the transport, not after the
	// flush succeeds: a retried attempt re-sends the whole frame, and a
	// write that dies mid-flush still moved bytes. Counting up front
	// makes WireBytesWritten the true offered-load denominator — every
	// attempt, first and retried alike.
	cl.bytesWritten.Add(uint64(len(frame)))
	if _, err := cc.bw.Write(frame); err != nil {
		cc.dead = true
		return nil, err
	}
	if err := cc.bw.Flush(); err != nil {
		cc.dead = true
		return nil, err
	}
	respOp, payload, err := readFrame(cc.br, cc.buf)
	if err != nil {
		cc.dead = true
		return nil, err
	}
	cl.bytesRead.Add(uint64(frameHeaderLen + 1 + len(payload)))
	if cap(payload) > cap(cc.buf) {
		cc.buf = payload[:cap(payload)]
	}
	if respOp == opErr {
		// The server closes after an error frame; this conn is done.
		cc.dead = true
		return nil, remoteErr(payload)
	}
	if respOp != op+1 {
		cc.dead = true
		return nil, fmt.Errorf("%w: response opcode %#x to request %#x", ErrProtocol, respOp, op)
	}
	return payload, nil
}

// do runs one request/response exchange under a fresh retry budget.
// encode appends the request payload to the connection's frame scratch;
// fn decodes the response payload while the connection is still checked
// out (the payload aliases the connection's scratch buffer).
func (cl *Client) do(ctx context.Context, op byte, encode func(dst []byte) []byte, fn func(payload []byte) error) error {
	var bud retryBudget
	return cl.doBudget(ctx, &bud, op, encode, fn)
}

// doBudget is the retrying request loop. Each attempt runs under its
// own derived deadline (see RetryPolicy.AttemptTimeout); a transport
// failure — dial error, closed/reset connection, attempt timeout,
// checksum or truncated frame — is retried on a fresh connection after
// a capped, jittered exponential backoff, until the per-request attempt
// cap or the caller's shared batch budget runs out (then the last
// failure surfaces wrapped in ErrUnavailable). Deterministic failures —
// the peer's error frame, a protocol or meta violation — and an expired
// query ctx surface immediately.
//
// Retrying is sound because every request is an idempotent read of an
// immutable table generation: re-sending can change timing, never the
// answer.
func (cl *Client) doBudget(ctx context.Context, bud *retryBudget, op byte, encode func(dst []byte) []byte, fn func(payload []byte) error) error {
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		err := cl.attempt(ctx, cl.attemptDeadline(ctx, attempt), op, encode, fn)
		if err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// The query's own deadline/cancellation expired (possibly
			// surfacing as an I/O error on the armed socket): report the
			// ctx cause, not the transport symptom.
			return cerr
		}
		if !retryable(err) {
			return err
		}
		if attempt >= cl.retry.MaxAttempts || bud.spent >= cl.retry.Budget {
			return cl.unavailable(attempt, err)
		}
		bud.spent++
		cl.retries.Add(1)
		if serr := cl.sleepBackoff(ctx, bud.spent); serr != nil {
			return serr
		}
	}
}

// attempt is one try: check a connection out of the pool (dialing if
// the pool is under its bound), run the exchange under the attempt
// deadline, return the connection.
func (cl *Client) attempt(ctx context.Context, attemptDL time.Time, op byte, encode func(dst []byte) []byte, fn func(payload []byte) error) error {
	cc, _, err := cl.get(ctx)
	if err != nil {
		return err
	}
	payload, err := cl.roundTrip(ctx, cc, op, attemptDL, encode)
	if err == nil && fn != nil {
		err = fn(payload)
	}
	cl.put(cc)
	return err
}

// LookupBatch implements tables.Backend: canonical keys out, packed
// values and presence back. Keys present in the hot-key cache are
// answered locally; only the misses travel (one round trip per
// maxLookupKeys chunk), coalesced with any identical in-flight miss
// batch, and the fetched results — present or absent, both immutable —
// are cached for every later probe.
func (cl *Client) LookupBatch(ctx context.Context, keys []uint64, vals []uint16, found []bool) error {
	if len(vals) != len(keys) || len(found) != len(keys) {
		return fmt.Errorf("tablenet: LookupBatch slice lengths differ (%d/%d/%d)", len(keys), len(vals), len(found))
	}
	if cl.kcache == nil {
		return cl.lookupWire(ctx, keys, vals, found)
	}
	sc := batchScratchPool.Get().(*batchScratch)
	sc.grow(len(keys))
	missIdx, missKeys := sc.idx[:0], sc.keys[:0]
	for i, k := range keys {
		if v, f, ok := cl.kcache.get(k); ok {
			vals[i], found[i] = v, f
		} else {
			missIdx = append(missIdx, i)
			missKeys = append(missKeys, k)
		}
	}
	sc.idx, sc.keys = missIdx, missKeys
	cl.kcache.hits.Add(uint64(len(keys) - len(missIdx)))
	if len(missIdx) == 0 {
		batchScratchPool.Put(sc)
		return nil
	}
	cl.kcache.misses.Add(uint64(len(missIdx)))
	missVals, missFound := sc.vals[:len(missIdx)], sc.found[:len(missIdx)]
	err := cl.kflights.do(ctx, missKeys, missVals, missFound, cl.lookupFill)
	if err == nil {
		for j, i := range missIdx {
			vals[i], found[i] = missVals[j], missFound[j]
		}
	}
	batchScratchPool.Put(sc)
	return err
}

// lookupFill is the singleflight fetch function: resolve the miss keys
// over the wire, then publish every result into the hot-key cache.
func (cl *Client) lookupFill(ctx context.Context, keys []uint64, vals []uint16, found []bool) error {
	if err := cl.lookupWire(ctx, keys, vals, found); err != nil {
		return err
	}
	for i, k := range keys {
		cl.kcache.put(k, vals[i], found[i])
	}
	return nil
}

// lookupWire resolves keys against the server, one round trip per
// maxLookupKeys chunk, encoding each request directly into the pooled
// connection frame buffer. All chunks of one batch draw retries from a
// single budget.
func (cl *Client) lookupWire(ctx context.Context, keys []uint64, vals []uint16, found []bool) error {
	le := binary.LittleEndian
	var bud retryBudget
	for lo := 0; lo < len(keys); lo += maxLookupKeys {
		hi := min(lo+maxLookupKeys, len(keys))
		n := hi - lo
		chunk := keys[lo:hi]
		chunkVals, chunkFound := vals[lo:hi], found[lo:hi]
		err := cl.doBudget(ctx, &bud, opLookup, func(dst []byte) []byte {
			dst = le.AppendUint32(dst, uint32(n))
			for _, k := range chunk {
				dst = le.AppendUint64(dst, k)
			}
			return dst
		}, func(payload []byte) error {
			if len(payload) != 4+2*n+(n+7)/8 || int(le.Uint32(payload)) != n {
				return fmt.Errorf("%w: lookup response shape mismatch (%d bytes for %d keys)", ErrProtocol, len(payload), n)
			}
			bitmap := payload[4+2*n:]
			for i := 0; i < n; i++ {
				chunkVals[i] = le.Uint16(payload[4+2*i:])
				chunkFound[i] = bitmap[i/8]&(1<<(i%8)) != 0
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// LevelKeys implements tables.Backend: representative words of one cost
// level's index range. With the level cache enabled the range is served
// from aligned immutable blocks — fetched at most once each, coalesced
// across concurrent callers — so repeated scans stop re-fetching the
// hot low-level ranges entirely.
func (cl *Client) LevelKeys(ctx context.Context, c, lo int, out []uint64) error {
	if c < 0 || c > cl.meta.K {
		return fmt.Errorf("tablenet: level %d outside horizon %d", c, cl.meta.K)
	}
	if lo2, hi := cl.OwnedRange(); lo2 != 0 || hi != tables.RangeSpace {
		// A split shard holds only its range's slice of each level; a
		// dense read would silently miss the rest. Typed so callers are
		// steered to the sparse path.
		return fmt.Errorf("%w: dense level read against a shard owning [%#x, %#x); use LevelKeysSparse", tables.ErrNotOwned, lo2, hi)
	}
	count := cl.meta.LevelCounts[c]
	if lo < 0 || lo+len(out) > count {
		return fmt.Errorf("tablenet: level %d range [%d, %d) outside [0, %d)", c, lo, lo+len(out), count)
	}
	if cl.lcache == nil {
		return cl.levelWire(ctx, c, lo, out)
	}
	fetch := func(ctx context.Context, blockLo int, buf []uint64) error {
		return cl.levelWire(ctx, c, blockLo, buf)
	}
	for done := 0; done < len(out); {
		idx := (lo + done) / levelBlockKeys
		blockLo := idx * levelBlockKeys
		blockN := min(levelBlockKeys, count-blockLo)
		blk, err := cl.lcache.block(ctx, c, idx, blockN, fetch)
		if err != nil {
			return err
		}
		off := lo + done - blockLo
		n := min(len(out)-done, blockN-off)
		copy(out[done:done+n], (*blk)[off:off+n])
		done += n
	}
	return nil
}

// levelWire fetches one level range from the server, one round trip per
// maxLevelKeys chunk; as with lookups, the whole range shares one retry
// budget.
func (cl *Client) levelWire(ctx context.Context, c, lo int, out []uint64) error {
	le := binary.LittleEndian
	var bud retryBudget
	for done := 0; done < len(out); done += maxLevelKeys {
		n := min(maxLevelKeys, len(out)-done)
		start := lo + done
		dstKeys := out[done : done+n]
		err := cl.doBudget(ctx, &bud, opLevel, func(dst []byte) []byte {
			dst = le.AppendUint32(dst, uint32(c))
			dst = le.AppendUint64(dst, uint64(start))
			dst = le.AppendUint32(dst, uint32(n))
			return dst
		}, func(payload []byte) error {
			if len(payload) != 4+8*n || int(le.Uint32(payload)) != n {
				return fmt.Errorf("%w: level response shape mismatch (%d bytes for %d keys)", ErrProtocol, len(payload), n)
			}
			for i := range dstKeys {
				dstKeys[i] = le.Uint64(payload[4+8*i:])
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// LevelKeysSparse implements tables.SparseLevels over the wire: global
// level positions [lo, lo+n) are scanned server-side and only the keys
// whose high hash falls in [filterLo, filterHi) come back, as
// (position-lo, key) pairs — the level-iteration primitive of a split
// fleet, where each shard contributes its range's slice of the global
// level order. Results are not cached: the router's per-range fan-out
// already dedupes work, and sparse windows rarely repeat exactly.
func (cl *Client) LevelKeysSparse(ctx context.Context, c, lo, n int, filterLo, filterHi uint64, pos []uint32, keys []uint64) (int, error) {
	if c < 0 || c > cl.meta.K {
		return 0, fmt.Errorf("tablenet: level %d outside horizon %d", c, cl.meta.K)
	}
	count := cl.meta.LevelCounts[c]
	if lo < 0 || n < 0 || lo+n > count {
		return 0, fmt.Errorf("tablenet: sparse level %d window [%d, %d) outside [0, %d)", c, lo, lo+n, count)
	}
	if len(pos) < n || len(keys) < n {
		return 0, fmt.Errorf("tablenet: sparse level scratch smaller than window %d", n)
	}
	if filterLo >= filterHi || filterHi > tables.RangeSpace {
		return 0, fmt.Errorf("tablenet: sparse level filter [%#x, %#x)", filterLo, filterHi)
	}
	le := binary.LittleEndian
	var bud retryBudget
	total := 0
	for done := 0; done < n; done += maxLevelKeys {
		cn := min(maxLevelKeys, n-done)
		start := lo + done
		chunkBase := total
		err := cl.doBudget(ctx, &bud, opLevelSparse, func(dst []byte) []byte {
			return encodeSparseReq(dst, c, start, cn, filterLo, filterHi)
		}, func(payload []byte) error {
			// A transport retry re-runs this decoder from scratch; rewind
			// so a half-decoded earlier attempt cannot leave stale pairs.
			total = chunkBase
			if len(payload) < 4 {
				return fmt.Errorf("%w: short sparse level response", ErrProtocol)
			}
			cnt := int(le.Uint32(payload))
			if cnt > cn || len(payload) != 4+12*cnt {
				return fmt.Errorf("%w: sparse level response shape mismatch (%d bytes, %d pairs)", ErrProtocol, len(payload), cnt)
			}
			prev := -1
			for i := 0; i < cnt; i++ {
				rp := int(le.Uint32(payload[4+12*i:]))
				if rp >= cn || rp <= prev {
					return fmt.Errorf("%w: sparse level positions not strictly increasing", ErrProtocol)
				}
				prev = rp
				pos[total] = uint32(rp + done)
				keys[total] = le.Uint64(payload[8+12*i:])
				total++
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

// Ping checks server liveness over a pooled connection — the probe
// /healthz uses to report a degraded router. The v3 response carries the
// shard's drain state, so pooled connections learn of a drain without
// redialing for a fresh hello; Draining reflects it afterwards.
func (cl *Client) Ping(ctx context.Context) error {
	return cl.do(ctx, opPing, nil, func(payload []byte) error {
		if len(payload) != 1 {
			return fmt.Errorf("%w: ping response carries %d bytes", ErrProtocol, len(payload))
		}
		cl.draining.Store(payload[0] != 0)
		return nil
	})
}

// ServerStats fetches the shard server's serving counters.
func (cl *Client) ServerStats(ctx context.Context) (Stats, error) {
	var st Stats
	err := cl.do(ctx, opStats, nil, func(payload []byte) error {
		var perr error
		st, perr = parseStats(payload)
		return perr
	})
	return st, err
}

// Addr returns the server address the client dials.
func (cl *Client) Addr() string { return cl.addr }

// Close severs every pooled connection. In-flight requests fail.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	for cc := range cl.conns {
		cc.c.Close()
	}
	cl.mu.Unlock()
	// Drain idle so retained conns don't linger in the channel.
	for {
		select {
		case <-cl.idle:
		default:
			return nil
		}
	}
}
