package tablenet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/tables"
)

// ClientOptions tune Dial; the zero value (and a nil pointer) picks the
// defaults.
type ClientOptions struct {
	// Conns bounds the connection pool (concurrent in-flight requests);
	// 0 means DefaultConns. The first connection is dialed eagerly (the
	// handshake is what validates the server); the rest are dialed on
	// demand as concurrency requires.
	Conns int
	// DialTimeout bounds each dial+handshake; 0 means 5 s.
	DialTimeout time.Duration
}

// DefaultConns is the default connection-pool bound.
const DefaultConns = 4

// Client speaks the tablenet protocol to one shard server and exposes it
// as a tables.Backend. Safe for concurrent use: requests are
// multiplexed over a bounded pool of request/response connections.
type Client struct {
	addr string
	opts ClientOptions
	meta tables.Meta

	// sem bounds the total number of live connections; idle holds the
	// ones not currently carrying a request.
	sem  chan struct{}
	idle chan *clientConn

	mu     sync.Mutex
	closed bool
	conns  map[*clientConn]struct{}
}

// clientConn is one pooled connection.
type clientConn struct {
	c   net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	buf []byte // frame scratch
	// helloMeta is the Meta this connection's handshake declared; conns
	// after the first must agree with the client's.
	helloMeta tables.Meta
	dead      bool
}

// Dial connects to a shard server, performs the handshake, and returns
// the client. The server's Meta (table geometry, alphabet fingerprint)
// is learned from the hello frame; pass the client to core.FromBackend,
// which verifies the fingerprint against the query alphabet.
func Dial(addr string, opts *ClientOptions) (*Client, error) {
	o := ClientOptions{}
	if opts != nil {
		o = *opts
	}
	if o.Conns <= 0 {
		o.Conns = DefaultConns
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	cl := &Client{
		addr:  addr,
		opts:  o,
		sem:   make(chan struct{}, o.Conns),
		idle:  make(chan *clientConn, o.Conns),
		conns: make(map[*clientConn]struct{}),
	}
	// Dial the first connection eagerly: its hello is the handshake that
	// validates the server before any query depends on it.
	cl.sem <- struct{}{}
	cc, err := cl.dialConn()
	if err != nil {
		<-cl.sem
		return nil, err
	}
	cl.meta = cc.helloMeta
	cl.meta.Source = fmt.Sprintf("tablenet(%s)", addr)
	cl.idle <- cc
	return cl, nil
}

// dialConn opens and handshakes one connection. The caller must already
// hold a sem slot.
func (cl *Client) dialConn() (*clientConn, error) {
	c, err := net.DialTimeout("tcp", cl.addr, cl.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("tablenet: dialing %s: %w", cl.addr, err)
	}
	cc := &clientConn{
		c:   c,
		br:  bufio.NewReaderSize(c, 1<<16),
		bw:  bufio.NewWriterSize(c, 1<<16),
		buf: make([]byte, 4096),
	}
	c.SetReadDeadline(time.Now().Add(cl.opts.DialTimeout))
	op, payload, err := readFrame(cc.br, cc.buf)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("tablenet: reading hello from %s: %w", cl.addr, err)
	}
	c.SetReadDeadline(time.Time{})
	if op != opHello {
		c.Close()
		return nil, fmt.Errorf("%w: expected hello, got opcode %#x", ErrProtocol, op)
	}
	m, err := parseHello(payload)
	if err != nil {
		c.Close()
		return nil, err
	}
	cc.helloMeta = m
	// A reconnect that lands on a restarted server holding different
	// tables must fail loudly, not silently mix table generations.
	cl.mu.Lock()
	first := cl.meta.LevelCounts == nil
	compatible := first || cl.meta.Compatible(m)
	if compatible && !cl.closed {
		cl.conns[cc] = struct{}{}
	}
	closed := cl.closed
	cl.mu.Unlock()
	if closed {
		c.Close()
		return nil, fmt.Errorf("tablenet: client closed")
	}
	if !compatible {
		c.Close()
		return nil, fmt.Errorf("%w: server %s now serves a different table set", ErrProtocol, cl.addr)
	}
	return cc, nil
}

// Meta returns the table metadata learned during the handshake.
func (cl *Client) Meta() tables.Meta { return cl.meta }

// get obtains a pooled connection, dialing a new one when the pool is
// under its bound, or waiting for an idle one otherwise. pooled reports
// that the connection was reused from the idle pool (and may therefore
// be stale — its peer could have restarted since the last request).
func (cl *Client) get(ctx context.Context) (cc *clientConn, pooled bool, err error) {
	select {
	case cc := <-cl.idle:
		return cc, true, nil
	default:
	}
	select {
	case cc := <-cl.idle:
		return cc, true, nil
	case cl.sem <- struct{}{}:
		cc, err := cl.dialConn()
		if err != nil {
			<-cl.sem
			return nil, false, err
		}
		return cc, false, nil
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// put returns a healthy connection to the pool, or retires a dead one.
func (cl *Client) put(cc *clientConn) {
	if cc.dead {
		cl.retire(cc)
		return
	}
	cl.mu.Lock()
	closed := cl.closed
	cl.mu.Unlock()
	if closed {
		cl.retire(cc)
		return
	}
	cl.idle <- cc
}

func (cl *Client) retire(cc *clientConn) {
	cc.c.Close()
	cl.mu.Lock()
	delete(cl.conns, cc)
	cl.mu.Unlock()
	<-cl.sem
}

// maxStall bounds one round trip when the context carries no deadline
// of its own: a shard host that vanishes without RST (partition, frozen
// process) must not pin a pooled connection — and its caller's
// worker-pool slot — forever.
const maxStall = 2 * time.Minute

// roundTrip sends one request frame and decodes the response, honouring
// ctx through the connection's I/O deadlines: a ctx deadline bounds the
// exchange, plain cancellation interrupts it (context.AfterFunc fires
// an immediate deadline, waking any blocked read/write), and maxStall
// backstops contexts with neither. On any error the connection is
// marked dead (request/response framing is lost).
func (cc *clientConn) roundTrip(ctx context.Context, op byte, req []byte) (byte, []byte, error) {
	deadline, has := ctx.Deadline()
	if !has {
		deadline = time.Now().Add(maxStall)
	}
	cc.c.SetDeadline(deadline)
	stop := context.AfterFunc(ctx, func() {
		cc.c.SetDeadline(time.Now())
	})
	defer stop()
	if err := writeFrame(cc.bw, op, req); err != nil {
		cc.dead = true
		return 0, nil, err
	}
	if err := cc.bw.Flush(); err != nil {
		cc.dead = true
		return 0, nil, err
	}
	respOp, payload, err := readFrame(cc.br, cc.buf)
	if err != nil {
		cc.dead = true
		return 0, nil, err
	}
	if cap(payload) > cap(cc.buf) {
		cc.buf = payload[:cap(payload)]
	}
	if respOp == opErr {
		// The server closes after an error frame; this conn is done.
		cc.dead = true
		return 0, nil, remoteErr(payload)
	}
	if respOp != op+1 {
		cc.dead = true
		return 0, nil, fmt.Errorf("%w: response opcode %#x to request %#x", ErrProtocol, respOp, op)
	}
	return respOp, payload, nil
}

// do runs one request/response exchange on a pooled connection.
// fn decodes the response payload while the connection is still checked
// out (the payload aliases the connection's scratch buffer).
//
// A transport failure on a connection reused from the idle pool is
// retried once on a fresh dial: after a server restart the pool holds
// up to Conns dead sockets, and without the retry each would convert
// into one user-visible query failure against a now-healthy server.
// Semantic failures (an error frame, a protocol violation) and failures
// on freshly dialed connections are not retried.
func (cl *Client) do(ctx context.Context, op byte, req []byte, fn func(payload []byte) error) error {
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		cc, pooled, err := cl.get(ctx)
		if err != nil {
			return err
		}
		_, payload, err := cc.roundTrip(ctx, op, req)
		if err != nil {
			cl.put(cc)
			if attempt == 0 && pooled && ctx.Err() == nil &&
				!errors.Is(err, ErrRemote) && !errors.Is(err, ErrProtocol) {
				continue
			}
			return err
		}
		if fn != nil {
			err = fn(payload)
		}
		cl.put(cc)
		return err
	}
}

// LookupBatch implements tables.Backend: canonical keys out, packed
// values and presence back, one round trip per maxLookupKeys chunk.
func (cl *Client) LookupBatch(ctx context.Context, keys []uint64, vals []uint16, found []bool) error {
	if len(vals) != len(keys) || len(found) != len(keys) {
		return fmt.Errorf("tablenet: LookupBatch slice lengths differ (%d/%d/%d)", len(keys), len(vals), len(found))
	}
	le := binary.LittleEndian
	for lo := 0; lo < len(keys); lo += maxLookupKeys {
		hi := min(lo+maxLookupKeys, len(keys))
		n := hi - lo
		req := make([]byte, 4+8*n)
		le.PutUint32(req, uint32(n))
		for i, k := range keys[lo:hi] {
			le.PutUint64(req[4+8*i:], k)
		}
		err := cl.do(ctx, opLookup, req, func(payload []byte) error {
			if len(payload) != 4+2*n+(n+7)/8 || int(le.Uint32(payload)) != n {
				return fmt.Errorf("%w: lookup response shape mismatch (%d bytes for %d keys)", ErrProtocol, len(payload), n)
			}
			bitmap := payload[4+2*n:]
			for i := 0; i < n; i++ {
				vals[lo+i] = le.Uint16(payload[4+2*i:])
				found[lo+i] = bitmap[i/8]&(1<<(i%8)) != 0
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// LevelKeys implements tables.Backend: representative words of one cost
// level's index range, one round trip per maxLevelKeys chunk.
func (cl *Client) LevelKeys(ctx context.Context, c, lo int, out []uint64) error {
	if c < 0 || c > cl.meta.K {
		return fmt.Errorf("tablenet: level %d outside horizon %d", c, cl.meta.K)
	}
	if lo < 0 || lo+len(out) > cl.meta.LevelCounts[c] {
		return fmt.Errorf("tablenet: level %d range [%d, %d) outside [0, %d)", c, lo, lo+len(out), cl.meta.LevelCounts[c])
	}
	le := binary.LittleEndian
	for done := 0; done < len(out); done += maxLevelKeys {
		n := min(maxLevelKeys, len(out)-done)
		req := make([]byte, 16)
		le.PutUint32(req, uint32(c))
		le.PutUint64(req[4:], uint64(lo+done))
		le.PutUint32(req[12:], uint32(n))
		dst := out[done : done+n]
		err := cl.do(ctx, opLevel, req, func(payload []byte) error {
			if len(payload) != 4+8*n || int(le.Uint32(payload)) != n {
				return fmt.Errorf("%w: level response shape mismatch (%d bytes for %d keys)", ErrProtocol, len(payload), n)
			}
			for i := range dst {
				dst[i] = le.Uint64(payload[4+8*i:])
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Ping checks server liveness over a pooled connection — the probe
// /healthz uses to report a degraded router.
func (cl *Client) Ping(ctx context.Context) error {
	return cl.do(ctx, opPing, nil, func(payload []byte) error {
		if len(payload) != 0 {
			return fmt.Errorf("%w: ping response carries %d bytes", ErrProtocol, len(payload))
		}
		return nil
	})
}

// ServerStats fetches the shard server's serving counters.
func (cl *Client) ServerStats(ctx context.Context) (Stats, error) {
	var st Stats
	err := cl.do(ctx, opStats, nil, func(payload []byte) error {
		var perr error
		st, perr = parseStats(payload)
		return perr
	})
	return st, err
}

// Addr returns the server address the client dials.
func (cl *Client) Addr() string { return cl.addr }

// Close severs every pooled connection. In-flight requests fail.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	for cc := range cl.conns {
		cc.c.Close()
	}
	cl.mu.Unlock()
	// Drain idle so retained conns don't linger in the channel.
	for {
		select {
		case <-cl.idle:
		default:
			return nil
		}
	}
}
