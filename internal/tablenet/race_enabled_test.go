//go:build race

package tablenet

// raceEnabled reports that the race detector is instrumenting this
// build; allocation guards are skipped then (sync.Pool intentionally
// drops items under the detector, so AllocsPerRun bounds calibrated
// for production builds do not hold).
const raceEnabled = true
