package tablenet

import (
	"sync/atomic"
	"time"
)

// Replica health states. The tracker is a small circuit breaker per
// replica: healthy replicas take traffic; a replica that fails
// EjectAfter consecutive requests is ejected for a window that doubles
// on every consecutive ejection (capped), so a flapping shard costs the
// fleet one backoff schedule instead of one timeout per batch; when the
// window expires a single half-open trial request (or a background
// probe) decides between re-admission and a longer ejection.
const (
	stateHealthy int32 = iota
	stateEjected
	stateHalfOpen
)

// Health-tracker defaults; see RouterOptions.
const (
	DefaultEjectAfter    = 3
	DefaultEjectBase     = 500 * time.Millisecond
	DefaultEjectMax      = 15 * time.Second
	DefaultProbeInterval = time.Second
	DefaultProbeTimeout  = time.Second
)

// healthTracker is one replica's breaker state. All fields are atomics:
// the readers are every lookup's replica-ordering pass, and the writers
// are request outcomes and background probes — none of which may block
// each other. Races between concurrent observers are benign (health is
// advisory; the worst case is one extra trial request).
type healthTracker struct {
	threshold int
	baseEject time.Duration
	maxEject  time.Duration

	state  atomic.Int32
	consec atomic.Uint64 // current consecutive-failure run
	until  atomic.Int64  // ejection window end (UnixNano)
	streak atomic.Uint32 // consecutive ejections, the backoff exponent

	ejections atomic.Uint64 // lifetime counter, for stats
}

func newHealthTracker(threshold int, base, max time.Duration) *healthTracker {
	return &healthTracker{threshold: threshold, baseEject: base, maxEject: max}
}

// allow reports whether the replica should receive traffic now. For an
// ejected replica whose window has expired it admits exactly one caller
// as the half-open trial (trial true); concurrent callers keep routing
// around until the trial's outcome is observed. A caller that was
// admitted as the trial but ends up not sending the request must call
// release so the trial slot reopens.
func (h *healthTracker) allow(now time.Time) (ok, trial bool) {
	switch h.state.Load() {
	case stateHealthy:
		return true, false
	case stateEjected:
		if now.UnixNano() < h.until.Load() {
			return false, false
		}
		if h.state.CompareAndSwap(stateEjected, stateHalfOpen) {
			return true, true
		}
		return false, false
	default: // half-open: a trial is already in flight
		return false, false
	}
}

// release reopens a half-open trial slot that was admitted but never
// used (the batch succeeded on an earlier replica). The ejection window
// is already expired, so the next allow re-admits immediately.
func (h *healthTracker) release() {
	h.state.CompareAndSwap(stateHalfOpen, stateEjected)
}

// observe records one request or probe outcome. Success re-admits and
// clears the failure run and ejection streak. Failure grows the run;
// a failed half-open trial — or a failure after the ejection window has
// expired (a background probe finding the replica still dark) —
// re-ejects with a doubled window, while failures inside a live window
// (stragglers from requests already in flight at ejection time) are
// ignored.
func (h *healthTracker) observe(ok bool, now time.Time) {
	if ok {
		h.state.Store(stateHealthy)
		h.consec.Store(0)
		h.streak.Store(0)
		return
	}
	n := h.consec.Add(1)
	switch h.state.Load() {
	case stateHalfOpen:
		h.eject(now)
	case stateHealthy:
		if n >= uint64(h.threshold) {
			h.eject(now)
		}
	case stateEjected:
		if now.UnixNano() >= h.until.Load() {
			h.eject(now)
		}
	}
}

// eject closes the breaker for the streak's backoff window.
func (h *healthTracker) eject(now time.Time) {
	s := h.streak.Add(1)
	d := h.baseEject
	for i := uint32(1); i < s && d < h.maxEject; i++ {
		d *= 2
	}
	if d > h.maxEject {
		d = h.maxEject
	}
	h.until.Store(now.Add(d).UnixNano())
	h.state.Store(stateEjected)
	h.ejections.Add(1)
}

// stateName renders the state for stats surfaces.
func (h *healthTracker) stateName() string {
	switch h.state.Load() {
	case stateEjected:
		return "ejected"
	case stateHalfOpen:
		return "half-open"
	default:
		return "healthy"
	}
}
