package tablenet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/tables"
)

// ErrSwapClosed reports a query or swap against a closed SwapBackend.
var ErrSwapClosed = fmt.Errorf("tablenet: swap backend closed")

// epoch is one installed router generation. refs starts at 1 — the
// "installed" reference, held until the epoch is swapped out or the
// backend closes — and each in-flight query holds one more, so the
// router closes exactly when the epoch is both superseded and drained of
// queries.
type epoch struct {
	r    *Router
	gen  uint64
	refs atomic.Int64
}

// acquire takes a query reference; it fails (instead of resurrecting a
// closing router) when the epoch already drained to zero.
func (e *epoch) acquire() bool {
	for {
		n := e.refs.Load()
		if n <= 0 {
			return false
		}
		if e.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops one reference; the last one out closes the router.
func (e *epoch) release() {
	if e.refs.Add(-1) == 0 {
		e.r.Close()
	}
}

// SwapBackend is a tables.Backend whose router can be replaced
// atomically while queries are in flight — the seam live topology
// reloads swap through. A query acquires the current epoch for its whole
// batch, so it finishes on the topology it started on; the superseded
// router closes only when its last in-flight query releases it. Swaps
// are generation-stamped and meta-checked: a topology whose fleet serves
// a different table set is refused, because cached results and in-flight
// queries assume one immutable table generation.
type SwapBackend struct {
	cur  atomic.Pointer[epoch]
	meta tables.Meta

	// drainBase and ownBase carry the retired epochs' counters forward,
	// so the exported totals stay monotonic across swaps even though each
	// router keeps its own.
	drainBase atomic.Uint64
	ownBase   atomic.Uint64

	mu     sync.Mutex // serializes Swap and Close
	closed bool
}

// NewSwapBackend installs r as generation gen.
func NewSwapBackend(r *Router, gen uint64) *SwapBackend {
	s := &SwapBackend{meta: r.Meta()}
	e := &epoch{r: r, gen: gen}
	e.refs.Store(1)
	s.cur.Store(e)
	return s
}

// current acquires the live epoch for one query. The load-then-acquire
// loop is what makes a concurrent swap safe: an epoch that drained
// between the load and the acquire is simply retried against the new
// pointer.
func (s *SwapBackend) current() (*epoch, error) {
	for {
		e := s.cur.Load()
		if e == nil {
			return nil, ErrSwapClosed
		}
		if e.acquire() {
			return e, nil
		}
	}
}

// Swap installs r as generation gen and schedules the previous router to
// close once its in-flight queries drain. gen must be strictly newer
// than the installed generation (stale topology redeliveries are
// no-ops, reported as errors so the caller can log them), and r must
// serve the same table set as the epoch it replaces. On error r is NOT
// closed — it still belongs to the caller.
func (s *SwapBackend) Swap(r *Router, gen uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.cur.Load()
	if s.closed || old == nil {
		return ErrSwapClosed
	}
	if gen <= old.gen {
		return fmt.Errorf("tablenet: topology generation %d is not newer than installed %d", gen, old.gen)
	}
	if !s.meta.Compatible(r.Meta()) {
		return fmt.Errorf("%w: generation %d fleet serves a different table set", ErrProtocol, gen)
	}
	e := &epoch{r: r, gen: gen}
	e.refs.Store(1)
	s.cur.Store(e)
	// Fold the outgoing epoch's counters into the carried bases. Queries
	// still in flight on it can increment after this snapshot — a small
	// undercount, never a reset, which is the property metrics need.
	s.drainBase.Add(old.r.DrainRerouted())
	s.ownBase.Add(old.r.OwnershipMismatches())
	old.release()
	return nil
}

// Generation returns the installed topology generation (0 when closed).
func (s *SwapBackend) Generation() uint64 {
	if e := s.cur.Load(); e != nil {
		return e.gen
	}
	return 0
}

// Meta returns the table metadata every installed epoch must share.
func (s *SwapBackend) Meta() tables.Meta { return s.meta }

// LookupBatch resolves the batch against the epoch current at entry; a
// swap mid-batch does not reroute it.
func (s *SwapBackend) LookupBatch(ctx context.Context, keys []uint64, vals []uint16, found []bool) error {
	e, err := s.current()
	if err != nil {
		return err
	}
	defer e.release()
	return e.r.LookupBatch(ctx, keys, vals, found)
}

// LevelKeys resolves the read against the epoch current at entry.
func (s *SwapBackend) LevelKeys(ctx context.Context, c, lo int, out []uint64) error {
	e, err := s.current()
	if err != nil {
		return err
	}
	defer e.release()
	return e.r.LevelKeys(ctx, c, lo, out)
}

// Health probes the current fleet (see Router.Health).
func (s *SwapBackend) Health(ctx context.Context) FleetHealth {
	e, err := s.current()
	if err != nil {
		return FleetHealth{}
	}
	defer e.release()
	return e.r.Health(ctx)
}

// HealthStats snapshots the current fleet's per-replica trackers.
func (s *SwapBackend) HealthStats() []tables.Health {
	e, err := s.current()
	if err != nil {
		return nil
	}
	defer e.release()
	return e.r.HealthStats()
}

// CacheStats aggregates the current fleet's client-side cache counters.
func (s *SwapBackend) CacheStats() tables.CacheStats {
	e, err := s.current()
	if err != nil {
		return tables.CacheStats{}
	}
	defer e.release()
	return e.r.CacheStats()
}

// DrainRerouted counts drain-rerouted sub-batches across every epoch
// this backend has installed: retired routers' counts are folded into a
// carried base at swap time, so the total is monotonic.
func (s *SwapBackend) DrainRerouted() uint64 {
	base := s.drainBase.Load()
	e, err := s.current()
	if err != nil {
		return base
	}
	defer e.release()
	return base + e.r.DrainRerouted()
}

// OwnershipMismatches sums refused reconnects across every installed
// epoch, monotonic the same way DrainRerouted is.
func (s *SwapBackend) OwnershipMismatches() uint64 {
	base := s.ownBase.Load()
	e, err := s.current()
	if err != nil {
		return base
	}
	defer e.release()
	return base + e.r.OwnershipMismatches()
}

// Check probes the current fleet's replicas (see Router.Check).
func (s *SwapBackend) Check(ctx context.Context) []ShardStatus {
	e, err := s.current()
	if err != nil {
		return nil
	}
	defer e.release()
	return e.r.Check(ctx)
}

// Residency collects the current fleet's per-replica store residency
// (see Router.Residency).
func (s *SwapBackend) Residency(ctx context.Context) []ShardResidency {
	e, err := s.current()
	if err != nil {
		return nil
	}
	defer e.release()
	return e.r.Residency(ctx)
}

// Shards returns the current fleet's replica count.
func (s *SwapBackend) Shards() int {
	e, err := s.current()
	if err != nil {
		return 0
	}
	defer e.release()
	return e.r.Shards()
}

// Ranges returns the current fleet's hash-range count.
func (s *SwapBackend) Ranges() int {
	e, err := s.current()
	if err != nil {
		return 0
	}
	defer e.release()
	return e.r.Ranges()
}

// Close retires the backend: new queries fail with ErrSwapClosed and the
// installed router closes as soon as its in-flight queries drain (a
// query that already acquired the epoch finishes normally). Idempotent.
func (s *SwapBackend) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if old := s.cur.Swap(nil); old != nil {
		old.release()
	}
	return nil
}
