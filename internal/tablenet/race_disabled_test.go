//go:build !race

package tablenet

// raceEnabled reports that the race detector is instrumenting this
// build; see race_enabled_test.go.
const raceEnabled = false
