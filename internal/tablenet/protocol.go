// Package tablenet serves precomputed search tables over the network:
// the distribution seam of the paper's precompute-once/query-many
// workflow. A shard server (Serve) exports any tables.Backend —
// typically a memory-mapped tablesio v2 store — through a compact
// length-prefixed binary protocol; Client speaks it back as a
// tables.Backend, and Router composes N such backends into one by
// partitioning the canonical-representative key space on the same high
// Wang-hash bits the in-process sharded table already routes by.
//
// The protocol is deliberately small. Each frame is
//
//	uint32 length (op + payload bytes, little-endian) |
//	uint32 checksum (FNV-1a over op + payload) | byte op | payload
//
// and a connection is strictly request/response (pipelining comes from a
// client-side connection pool, not the wire). On accept the server
// speaks first with a Hello frame carrying the protocol version, the
// table-format generation, the alphabet fingerprint, and the per-level
// iteration bounds — so an incompatible client fails the handshake
// instead of misinterpreting lookups. Three requests exist: batched
// canonical-key lookup, level-range key fetch, and server stats (plus
// ping). Every length field is bounds-checked against hard caps before
// any allocation, mirroring tablesio's forged-header guards: a malicious
// peer can fail a connection, never balloon the process.
//
// The checksum (protocol v2) is what makes transport corruption a
// detected failure instead of a wrong answer: a flipped byte anywhere in
// a frame — a lookup value, a level key, a length field that still lands
// in bounds — fails verification (ErrChecksum) and tears the connection
// down, and because every request is an idempotent read of an immutable
// table, the client retries it safely on a fresh connection.
package tablenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/bfs"
	"repro/internal/tables"
)

// ErrProtocol reports a malformed or out-of-contract frame; the
// connection it arrived on is unusable afterwards.
var ErrProtocol = errors.New("tablenet: protocol error")

// ErrRemote reports an error frame sent by the peer (the remote's own
// description of why it rejected a request).
var ErrRemote = errors.New("tablenet: remote error")

// ErrChecksum reports a frame whose payload did not verify against its
// header checksum: the transport corrupted bytes in flight (or a peer
// speaks a different frame layout). The connection is unusable, but the
// failed request is an idempotent read and safe to retry elsewhere —
// corruption is classified as a retryable transport fault, never
// surfaced as data.
var ErrChecksum = errors.New("tablenet: frame checksum mismatch")

// ErrUnavailable reports that a request exhausted its retry budget
// against transport failures (dial errors, dropped connections,
// per-attempt timeouts): the shard is unreachable or too unhealthy to
// answer. The router treats it — like any retryable failure — as the
// trigger for failing over to a sibling replica.
var ErrUnavailable = errors.New("tablenet: shard unavailable")

const (
	// protoVersion gates the wire format itself; bumped on incompatible
	// frame-layout changes. v2 added the per-frame FNV-1a checksum.
	protoVersion = 2

	// maxFrameLen caps op+payload of any frame. The largest legitimate
	// frame is a full lookup batch (4 + 8·maxLookupKeys bytes); 2 MiB
	// leaves headroom without letting a forged length commit real
	// memory.
	maxFrameLen = 2 << 20

	// maxLookupKeys caps keys per lookup request; larger batches are
	// split client-side.
	maxLookupKeys = 1 << 17

	// maxLevelKeys caps representatives per level-range request.
	maxLevelKeys = 1 << 16

	// maxErrLen caps the error-message payload a peer can make us hold.
	maxErrLen = 1 << 10
)

// Frame opcodes. Responses are request+1 so a mismatch is caught
// structurally.
const (
	opHello   byte = 0x01
	opLookup  byte = 0x10
	opLookupR byte = 0x11
	opLevel   byte = 0x20
	opLevelR  byte = 0x21
	opStats   byte = 0x30
	opStatsR  byte = 0x31
	opPing    byte = 0x40
	opPingR   byte = 0x41
	opErr     byte = 0x7F
)

// frameHeaderLen is the byte length of the v2 frame header: uint32
// body length plus uint32 FNV-1a checksum of the body (op + payload).
const frameHeaderLen = 8

// frameSum is the FNV-1a checksum carried in every frame header,
// computed over the frame body (op + payload). Not cryptographic — it
// detects transport corruption (flipped bytes, torn frames spliced
// across reconnects), not adversaries; hostile peers are already bounded
// by the length caps and the handshake.
func frameSum(body []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range body {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// writeFrame emits one frame. payload may be nil. The hot paths on both
// sides use pooled whole-frame buffers instead (appendFrame client- and
// server-side); this remains for handshakes, error frames, and tests.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	if len(payload)+1 > maxFrameLen {
		return fmt.Errorf("%w: frame of %d bytes exceeds cap", ErrProtocol, len(payload)+1)
	}
	var hdr [frameHeaderLen + 1]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[8] = op
	sum := uint32(2166136261)
	sum = (sum ^ uint32(op)) * 16777619
	for _, b := range payload {
		sum ^= uint32(b)
		sum *= 16777619
	}
	binary.LittleEndian.PutUint32(hdr[4:8], sum)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// appendFrame appends one complete frame — length+checksum header,
// opcode, payload — to dst and returns it: the allocation-free path for
// pooled frame buffers, emitted with a single Write.
func appendFrame(dst []byte, op byte, payload []byte) ([]byte, error) {
	if len(payload)+1 > maxFrameLen {
		return dst, fmt.Errorf("%w: frame of %d bytes exceeds cap", ErrProtocol, len(payload)+1)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)+1))
	dst = append(dst, 0, 0, 0, 0) // checksum, patched below
	start := len(dst)
	dst = append(dst, op)
	dst = append(dst, payload...)
	binary.LittleEndian.PutUint32(dst[start-4:], frameSum(dst[start:]))
	return dst, nil
}

// readFrame reads one frame, reusing buf both to parse the header and
// to hold the payload when it is large enough (the header bytes are
// consumed before the body read overwrites them), so a warm caller
// allocates nothing. The declared length is validated against
// maxFrameLen BEFORE any allocation, so a forged length cannot OOM the
// reader, and the body is verified against the header checksum so a
// corrupted byte anywhere in the frame fails loudly (ErrChecksum)
// instead of decoding into a wrong answer.
func readFrame(r io.Reader, buf []byte) (op byte, payload []byte, err error) {
	hdr := buf
	if cap(hdr) < frameHeaderLen {
		hdr = make([]byte, frameHeaderLen)
	}
	hdr = hdr[:frameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if n == 0 || n > maxFrameLen {
		// An implausible length is indistinguishable from a corrupted
		// length field — the checksum can only vouch for the body it
		// delimits. Typed ErrChecksum (transport-class, retryable): a
		// peer that really speaks garbage just exhausts the retry budget
		// and surfaces as unavailable.
		return 0, nil, fmt.Errorf("%w: frame length %d outside (0, %d]", ErrChecksum, n, maxFrameLen)
	}
	body := buf
	if uint32(cap(body)) < n {
		body = make([]byte, n)
	}
	body = body[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		// A frame cut short is a peer dying mid-write or a torn
		// transport, not a contract violation: deliberately NOT
		// ErrProtocol, so the retry classifier treats it like the
		// connection loss it is.
		return 0, nil, fmt.Errorf("tablenet: truncated frame: %w", err)
	}
	if got := frameSum(body); got != sum {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes sums to %#x, header claims %#x", ErrChecksum, n, got, sum)
	}
	return body[0], body[1:], nil
}

// encodeHello lays out the handshake payload:
//
//	version byte | flags uint32 (bit0 reduced) | k uint32 |
//	entries uint64 | fingerprint (u32 u32 u64 u64) |
//	levelCounts (k+1)×uint64
func encodeHello(m tables.Meta) []byte {
	buf := make([]byte, 1+4+4+8+24+(m.K+1)*8)
	buf[0] = protoVersion
	le := binary.LittleEndian
	var flags uint32
	if m.Reduced {
		flags |= 1
	}
	le.PutUint32(buf[1:], flags)
	le.PutUint32(buf[5:], uint32(m.K))
	le.PutUint64(buf[9:], uint64(m.Entries))
	le.PutUint32(buf[17:], m.Fingerprint.Elements)
	le.PutUint32(buf[21:], m.Fingerprint.MaxCost)
	le.PutUint64(buf[25:], m.Fingerprint.XorPerms)
	le.PutUint64(buf[33:], m.Fingerprint.SumCosts)
	for c, n := range m.LevelCounts {
		le.PutUint64(buf[41+8*c:], uint64(n))
	}
	return buf
}

// parseHello decodes and validates a handshake payload from an untrusted
// peer. Every count is bounds-checked (k against the packed-cost cap,
// entries against the level-count sum) so a forged hello cannot induce
// huge allocations or an inconsistent Meta.
func parseHello(payload []byte) (tables.Meta, error) {
	var m tables.Meta
	if len(payload) < 41 {
		return m, fmt.Errorf("%w: hello of %d bytes", ErrProtocol, len(payload))
	}
	if v := payload[0]; v != protoVersion {
		return m, fmt.Errorf("%w: protocol version %d, this build speaks %d", ErrProtocol, v, protoVersion)
	}
	le := binary.LittleEndian
	flags := le.Uint32(payload[1:])
	k := le.Uint32(payload[5:])
	if k > uint32(bfs.MaxPackedCost) {
		return m, fmt.Errorf("%w: implausible horizon %d", ErrProtocol, k)
	}
	entries := le.Uint64(payload[9:])
	if len(payload) != 41+(int(k)+1)*8 {
		return m, fmt.Errorf("%w: hello length %d does not match horizon %d", ErrProtocol, len(payload), k)
	}
	m = tables.Meta{
		K:       int(k),
		Reduced: flags&1 != 0,
		Entries: int(entries),
		Fingerprint: tables.Fingerprint{
			Elements: le.Uint32(payload[17:]),
			MaxCost:  le.Uint32(payload[21:]),
			XorPerms: le.Uint64(payload[25:]),
			SumCosts: le.Uint64(payload[33:]),
		},
		LevelCounts: make([]int, k+1),
	}
	var sum uint64
	for c := range m.LevelCounts {
		n := le.Uint64(payload[41+8*c:])
		sum += n
		if n > entries || sum > entries {
			return m, fmt.Errorf("%w: level %d count %d exceeds declared entries %d", ErrProtocol, c, n, entries)
		}
		m.LevelCounts[c] = int(n)
	}
	if err := m.Validate(); err != nil {
		return m, fmt.Errorf("%w: %w", ErrProtocol, err)
	}
	return m, nil
}

// Stats are the serving counters a shard server reports over opStats.
type Stats struct {
	// Lookups counts LookupBatch requests; Keys the keys they probed and
	// Hits the subset found. LevelReqs counts LevelKeys requests.
	Lookups   uint64 `json:"lookups"`
	Keys      uint64 `json:"keys"`
	Hits      uint64 `json:"hits"`
	LevelReqs uint64 `json:"level_reqs"`
}

func encodeStats(st Stats) []byte {
	buf := make([]byte, 32)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], st.Lookups)
	le.PutUint64(buf[8:], st.Keys)
	le.PutUint64(buf[16:], st.Hits)
	le.PutUint64(buf[24:], st.LevelReqs)
	return buf
}

func parseStats(payload []byte) (Stats, error) {
	if len(payload) != 32 {
		return Stats{}, fmt.Errorf("%w: stats payload of %d bytes", ErrProtocol, len(payload))
	}
	le := binary.LittleEndian
	return Stats{
		Lookups:   le.Uint64(payload[0:]),
		Keys:      le.Uint64(payload[8:]),
		Hits:      le.Uint64(payload[16:]),
		LevelReqs: le.Uint64(payload[24:]),
	}, nil
}

// remoteErr converts an opErr payload into an error, capping how much of
// a hostile message is retained.
func remoteErr(payload []byte) error {
	if len(payload) > maxErrLen {
		payload = payload[:maxErrLen]
	}
	return fmt.Errorf("%w: %s", ErrRemote, payload)
}
