// Package tablenet serves precomputed search tables over the network:
// the distribution seam of the paper's precompute-once/query-many
// workflow. A shard server (Serve) exports any tables.Backend —
// typically a memory-mapped tablesio v2 store — through a compact
// length-prefixed binary protocol; Client speaks it back as a
// tables.Backend, and Router composes N such backends into one by
// partitioning the canonical-representative key space on the same high
// Wang-hash bits the in-process sharded table already routes by.
//
// The protocol is deliberately small. Each frame is
//
//	uint32 length (op + payload bytes, little-endian) |
//	uint32 checksum (FNV-1a over op + payload) | byte op | payload
//
// and a connection is strictly request/response (pipelining comes from a
// client-side connection pool, not the wire). On accept the server
// speaks first with a Hello frame carrying the protocol version, the
// table-format generation, the alphabet fingerprint, and the per-level
// iteration bounds — so an incompatible client fails the handshake
// instead of misinterpreting lookups. Three requests exist: batched
// canonical-key lookup, level-range key fetch, and server stats (plus
// ping). Every length field is bounds-checked against hard caps before
// any allocation, mirroring tablesio's forged-header guards: a malicious
// peer can fail a connection, never balloon the process.
//
// The checksum (protocol v2) is what makes transport corruption a
// detected failure instead of a wrong answer: a flipped byte anywhere in
// a frame — a lookup value, a level key, a length field that still lands
// in bounds — fails verification (ErrChecksum) and tears the connection
// down, and because every request is an idempotent read of an immutable
// table, the client retries it safely on a fresh connection.
package tablenet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/bfs"
	"repro/internal/tables"
)

// ErrProtocol reports a malformed or out-of-contract frame; the
// connection it arrived on is unusable afterwards.
var ErrProtocol = errors.New("tablenet: protocol error")

// ErrRemote reports an error frame sent by the peer (the remote's own
// description of why it rejected a request).
var ErrRemote = errors.New("tablenet: remote error")

// ErrChecksum reports a frame whose payload did not verify against its
// header checksum: the transport corrupted bytes in flight (or a peer
// speaks a different frame layout). The connection is unusable, but the
// failed request is an idempotent read and safe to retry elsewhere —
// corruption is classified as a retryable transport fault, never
// surfaced as data.
var ErrChecksum = errors.New("tablenet: frame checksum mismatch")

// ErrUnavailable reports that a request exhausted its retry budget
// against transport failures (dial errors, dropped connections,
// per-attempt timeouts): the shard is unreachable or too unhealthy to
// answer. The router treats it — like any retryable failure — as the
// trigger for failing over to a sibling replica.
var ErrUnavailable = errors.New("tablenet: shard unavailable")

// ErrOwnership reports a shard whose hello-advertised key range does not
// cover the range it was wired to serve — a split store mounted at the
// wrong fleet position, or a shard whose range changed across a
// reconnect. Deliberately NOT a retryable transport fault: retrying the
// same miswired shard cannot help, and serving through it would return
// not-found for keys the fleet actually holds. The router refuses the
// wiring instead.
var ErrOwnership = errors.New("tablenet: shard does not own its wired range")

// ErrDraining reports a request refused because the shard is draining:
// it finishes in-flight work but accepts no new connections or requests.
// Clients treat it like unavailability (fail over to a sibling), except
// it is the shard's own orderly announcement rather than a fault.
var ErrDraining = errors.New("tablenet: shard is draining")

const (
	// protoVersion gates the wire format itself; bumped on incompatible
	// frame-layout changes. v2 added the per-frame FNV-1a checksum; v3
	// added the owned key range and draining flag to the hello, the
	// sparse level-read op, and residency fields in stats.
	protoVersion = 3

	// maxFrameLen caps op+payload of any frame. The largest legitimate
	// frame is a full lookup batch (4 + 8·maxLookupKeys bytes); 2 MiB
	// leaves headroom without letting a forged length commit real
	// memory.
	maxFrameLen = 2 << 20

	// maxLookupKeys caps keys per lookup request; larger batches are
	// split client-side.
	maxLookupKeys = 1 << 17

	// maxLevelKeys caps representatives per level-range request.
	maxLevelKeys = 1 << 16

	// maxErrLen caps the error-message payload a peer can make us hold.
	maxErrLen = 1 << 10
)

// Frame opcodes. Responses are request+1 so a mismatch is caught
// structurally.
const (
	opHello        byte = 0x01
	opLookup       byte = 0x10
	opLookupR      byte = 0x11
	opLevel        byte = 0x20
	opLevelR       byte = 0x21
	opLevelSparse  byte = 0x22
	opLevelSparseR byte = 0x23
	opStats        byte = 0x30
	opStatsR       byte = 0x31
	opPing         byte = 0x40
	opPingR        byte = 0x41
	opErr          byte = 0x7F
)

// frameHeaderLen is the byte length of the v2 frame header: uint32
// body length plus uint32 FNV-1a checksum of the body (op + payload).
const frameHeaderLen = 8

// frameSum is the FNV-1a checksum carried in every frame header,
// computed over the frame body (op + payload). Not cryptographic — it
// detects transport corruption (flipped bytes, torn frames spliced
// across reconnects), not adversaries; hostile peers are already bounded
// by the length caps and the handshake.
func frameSum(body []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range body {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// writeFrame emits one frame. payload may be nil. The hot paths on both
// sides use pooled whole-frame buffers instead (appendFrame client- and
// server-side); this remains for handshakes, error frames, and tests.
func writeFrame(w io.Writer, op byte, payload []byte) error {
	if len(payload)+1 > maxFrameLen {
		return fmt.Errorf("%w: frame of %d bytes exceeds cap", ErrProtocol, len(payload)+1)
	}
	var hdr [frameHeaderLen + 1]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[8] = op
	sum := uint32(2166136261)
	sum = (sum ^ uint32(op)) * 16777619
	for _, b := range payload {
		sum ^= uint32(b)
		sum *= 16777619
	}
	binary.LittleEndian.PutUint32(hdr[4:8], sum)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// appendFrame appends one complete frame — length+checksum header,
// opcode, payload — to dst and returns it: the allocation-free path for
// pooled frame buffers, emitted with a single Write.
func appendFrame(dst []byte, op byte, payload []byte) ([]byte, error) {
	if len(payload)+1 > maxFrameLen {
		return dst, fmt.Errorf("%w: frame of %d bytes exceeds cap", ErrProtocol, len(payload)+1)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)+1))
	dst = append(dst, 0, 0, 0, 0) // checksum, patched below
	start := len(dst)
	dst = append(dst, op)
	dst = append(dst, payload...)
	binary.LittleEndian.PutUint32(dst[start-4:], frameSum(dst[start:]))
	return dst, nil
}

// readFrame reads one frame, reusing buf both to parse the header and
// to hold the payload when it is large enough (the header bytes are
// consumed before the body read overwrites them), so a warm caller
// allocates nothing. The declared length is validated against
// maxFrameLen BEFORE any allocation, so a forged length cannot OOM the
// reader, and the body is verified against the header checksum so a
// corrupted byte anywhere in the frame fails loudly (ErrChecksum)
// instead of decoding into a wrong answer.
func readFrame(r io.Reader, buf []byte) (op byte, payload []byte, err error) {
	hdr := buf
	if cap(hdr) < frameHeaderLen {
		hdr = make([]byte, frameHeaderLen)
	}
	hdr = hdr[:frameHeaderLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	sum := binary.LittleEndian.Uint32(hdr[4:])
	if n == 0 || n > maxFrameLen {
		// An implausible length is indistinguishable from a corrupted
		// length field — the checksum can only vouch for the body it
		// delimits. Typed ErrChecksum (transport-class, retryable): a
		// peer that really speaks garbage just exhausts the retry budget
		// and surfaces as unavailable.
		return 0, nil, fmt.Errorf("%w: frame length %d outside (0, %d]", ErrChecksum, n, maxFrameLen)
	}
	body := buf
	if uint32(cap(body)) < n {
		body = make([]byte, n)
	}
	body = body[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		// A frame cut short is a peer dying mid-write or a torn
		// transport, not a contract violation: deliberately NOT
		// ErrProtocol, so the retry classifier treats it like the
		// connection loss it is.
		return 0, nil, fmt.Errorf("tablenet: truncated frame: %w", err)
	}
	if got := frameSum(body); got != sum {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes sums to %#x, header claims %#x", ErrChecksum, n, got, sum)
	}
	return body[0], body[1:], nil
}

// Hello flag bits (the uint32 at payload offset 1). Bits 8–15 carry
// the shard's synthesis horizon (tables.Meta.Horizon) — 0 there means
// "unadvertised" (a pre-horizon peer), which Meta.NormHorizon defaults
// to K, so mixed-version fleets interoperate without a protocol bump.
const (
	helloFlagReduced  uint32 = 1 << 0
	helloFlagDraining uint32 = 1 << 1

	helloHorizonShift        = 8
	helloHorizonMask  uint32 = 0xff
)

// helloFixedLen is the byte length of the v3 hello before the
// variable-length level counts: version byte, flags, k, entries,
// fingerprint, and the owned key range.
const helloFixedLen = 1 + 4 + 4 + 8 + 24 + 8 + 8

// hello is the decoded handshake: the shard's table metadata plus its
// serving state. RangeLo/RangeHi is the half-open [lo, hi) interval of
// high-32 Wang-hash space the shard owns — [0, tables.RangeSpace) for a
// full store — and is what the router's ownership check verifies against
// the position the shard was wired into. Draining announces the shard is
// finishing in-flight work and should receive no new sub-batches.
type hello struct {
	Meta     tables.Meta
	RangeLo  uint64
	RangeHi  uint64
	Draining bool
}

// encodeHello lays out the handshake payload:
//
//	version byte | flags uint32 (bit0 reduced, bit1 draining,
//	bits 8–15 synthesis horizon) | k uint32 | entries uint64 |
//	fingerprint (u32 u32 u64 u64) | rangeLo uint64 | rangeHi uint64 |
//	levelCounts (k+1)×uint64
func encodeHello(h hello) []byte {
	m := h.Meta
	buf := make([]byte, helloFixedLen+(m.K+1)*8)
	buf[0] = protoVersion
	le := binary.LittleEndian
	var flags uint32
	if m.Reduced {
		flags |= helloFlagReduced
	}
	if h.Draining {
		flags |= helloFlagDraining
	}
	flags |= (uint32(m.NormHorizon()) & helloHorizonMask) << helloHorizonShift
	le.PutUint32(buf[1:], flags)
	le.PutUint32(buf[5:], uint32(m.K))
	le.PutUint64(buf[9:], uint64(m.Entries))
	le.PutUint32(buf[17:], m.Fingerprint.Elements)
	le.PutUint32(buf[21:], m.Fingerprint.MaxCost)
	le.PutUint64(buf[25:], m.Fingerprint.XorPerms)
	le.PutUint64(buf[33:], m.Fingerprint.SumCosts)
	le.PutUint64(buf[41:], h.RangeLo)
	le.PutUint64(buf[49:], h.RangeHi)
	for c, n := range m.LevelCounts {
		le.PutUint64(buf[helloFixedLen+8*c:], uint64(n))
	}
	return buf
}

// parseHello decodes and validates a handshake payload from an untrusted
// peer. Every count is bounds-checked (k against the packed-cost cap,
// entries against the level-count sum, the owned range against the hash
// space) so a forged hello cannot induce huge allocations or an
// inconsistent Meta.
func parseHello(payload []byte) (hello, error) {
	var h hello
	if len(payload) < helloFixedLen {
		return h, fmt.Errorf("%w: hello of %d bytes", ErrProtocol, len(payload))
	}
	if v := payload[0]; v != protoVersion {
		return h, fmt.Errorf("%w: protocol version %d, this build speaks %d", ErrProtocol, v, protoVersion)
	}
	le := binary.LittleEndian
	flags := le.Uint32(payload[1:])
	k := le.Uint32(payload[5:])
	if k > uint32(bfs.MaxPackedCost) {
		return h, fmt.Errorf("%w: implausible horizon %d", ErrProtocol, k)
	}
	entries := le.Uint64(payload[9:])
	if len(payload) != helloFixedLen+(int(k)+1)*8 {
		return h, fmt.Errorf("%w: hello length %d does not match horizon %d", ErrProtocol, len(payload), k)
	}
	h.RangeLo = le.Uint64(payload[41:])
	h.RangeHi = le.Uint64(payload[49:])
	if h.RangeLo >= h.RangeHi || h.RangeHi > tables.RangeSpace {
		return h, fmt.Errorf("%w: implausible owned range [%#x, %#x)", ErrProtocol, h.RangeLo, h.RangeHi)
	}
	h.Draining = flags&helloFlagDraining != 0
	h.Meta = tables.Meta{
		K:       int(k),
		Reduced: flags&helloFlagReduced != 0,
		Entries: int(entries),
		Fingerprint: tables.Fingerprint{
			Elements: le.Uint32(payload[17:]),
			MaxCost:  le.Uint32(payload[21:]),
			XorPerms: le.Uint64(payload[25:]),
			SumCosts: le.Uint64(payload[33:]),
		},
		LevelCounts: make([]int, k+1),
		Horizon:     int(flags >> helloHorizonShift & helloHorizonMask),
	}
	var sum uint64
	for c := range h.Meta.LevelCounts {
		n := le.Uint64(payload[helloFixedLen+8*c:])
		sum += n
		if n > entries || sum > entries {
			return h, fmt.Errorf("%w: level %d count %d exceeds declared entries %d", ErrProtocol, c, n, entries)
		}
		h.Meta.LevelCounts[c] = int(n)
	}
	if err := h.Meta.Validate(); err != nil {
		return h, fmt.Errorf("%w: %w", ErrProtocol, err)
	}
	return h, nil
}

// Stats are the serving counters a shard server reports over opStats.
type Stats struct {
	// Lookups counts LookupBatch requests; Keys the keys they probed and
	// Hits the subset found. LevelReqs counts LevelKeys requests (dense
	// and sparse).
	Lookups   uint64 `json:"lookups"`
	Keys      uint64 `json:"keys"`
	Hits      uint64 `json:"hits"`
	LevelReqs uint64 `json:"level_reqs"`
	// ResidentBytes/MappedBytes report the shard store's page-cache
	// residency (v3): how much of the mapped table is actually in RAM.
	// Zero when the backend is not memory-mapped or residency is
	// unsupported on the host.
	ResidentBytes uint64 `json:"resident_bytes"`
	MappedBytes   uint64 `json:"mapped_bytes"`
}

func encodeStats(st Stats) []byte {
	buf := make([]byte, 48)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], st.Lookups)
	le.PutUint64(buf[8:], st.Keys)
	le.PutUint64(buf[16:], st.Hits)
	le.PutUint64(buf[24:], st.LevelReqs)
	le.PutUint64(buf[32:], st.ResidentBytes)
	le.PutUint64(buf[40:], st.MappedBytes)
	return buf
}

func parseStats(payload []byte) (Stats, error) {
	if len(payload) != 48 {
		return Stats{}, fmt.Errorf("%w: stats payload of %d bytes", ErrProtocol, len(payload))
	}
	le := binary.LittleEndian
	return Stats{
		Lookups:       le.Uint64(payload[0:]),
		Keys:          le.Uint64(payload[8:]),
		Hits:          le.Uint64(payload[16:]),
		LevelReqs:     le.Uint64(payload[24:]),
		ResidentBytes: le.Uint64(payload[32:]),
		MappedBytes:   le.Uint64(payload[40:]),
	}, nil
}

// sparseReqLen is the fixed payload of an opLevelSparse request:
//
//	cost uint32 | lo uint64 | n uint32 | filterLo uint64 | filterHi uint64
//
// Global level positions [lo, lo+n) are scanned and the keys whose high
// hash falls in [filterLo, filterHi) are returned as (position-lo, key)
// pairs. The filter is how a full store wired into a split topology
// serves exactly one range's slice without duplicating siblings' keys.
const sparseReqLen = 4 + 8 + 4 + 8 + 8

func encodeSparseReq(buf []byte, cost, lo, n int, filterLo, filterHi uint64) []byte {
	le := binary.LittleEndian
	buf = le.AppendUint32(buf, uint32(cost))
	buf = le.AppendUint64(buf, uint64(lo))
	buf = le.AppendUint32(buf, uint32(n))
	buf = le.AppendUint64(buf, filterLo)
	buf = le.AppendUint64(buf, filterHi)
	return buf
}

func parseSparseReq(payload []byte) (cost, lo, n int, filterLo, filterHi uint64, err error) {
	if len(payload) != sparseReqLen {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: sparse level request of %d bytes", ErrProtocol, len(payload))
	}
	le := binary.LittleEndian
	cost = int(le.Uint32(payload[0:]))
	lo64 := le.Uint64(payload[4:])
	n = int(le.Uint32(payload[12:]))
	filterLo = le.Uint64(payload[16:])
	filterHi = le.Uint64(payload[24:])
	if cost > bfs.MaxPackedCost || lo64 > uint64(int(^uint(0)>>1)) || n > maxLevelKeys {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: sparse level request cost=%d lo=%d n=%d out of contract", ErrProtocol, cost, lo64, n)
	}
	if filterLo >= filterHi || filterHi > tables.RangeSpace {
		return 0, 0, 0, 0, 0, fmt.Errorf("%w: sparse level filter [%#x, %#x)", ErrProtocol, filterLo, filterHi)
	}
	return cost, int(lo64), n, filterLo, filterHi, nil
}

// remoteErr converts an opErr payload into an error, capping how much of
// a hostile message is retained.
func remoteErr(payload []byte) error {
	if len(payload) > maxErrLen {
		payload = payload[:maxErrLen]
	}
	return fmt.Errorf("%w: %s", ErrRemote, payload)
}
