package tablenet

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/perm"
)

func TestHotKeyCacheBasics(t *testing.T) {
	c := newHotKeyCache(64, true)
	if _, _, ok := c.get(42); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.put(42, 7, true)
	c.put(43, 0, false) // negative result: cacheable forever
	if v, f, ok := c.get(42); !ok || !f || v != 7 {
		t.Fatalf("get(42) = (%d, %v, %v)", v, f, ok)
	}
	if _, f, ok := c.get(43); !ok || f {
		t.Fatalf("negative entry lost: found=%v ok=%v", f, ok)
	}
	// Re-inserting an immutable key is a no-op, never a corruption.
	c.put(42, 7, true)
	if v, _, ok := c.get(42); !ok || v != 7 {
		t.Fatalf("reinsert broke entry: (%d, %v)", v, ok)
	}
}

func TestHotKeyCacheEvictsWithinSet(t *testing.T) {
	// A minimal cache: one set of hotWays slots. Insert more keys than
	// ways; recently-used keys must survive over stale ones.
	c := newHotKeyCache(1, false)
	if c.mask != 0 {
		t.Fatalf("expected a single set, mask = %d", c.mask)
	}
	for k := uint64(1); k <= hotWays; k++ {
		c.put(k, uint16(k), true)
	}
	// Touch key 1 so it is the hottest, then overflow the set.
	if _, _, ok := c.get(1); !ok {
		t.Fatal("key 1 missing before overflow")
	}
	c.put(100, 100, true)
	if _, _, ok := c.get(100); !ok {
		t.Fatal("newly inserted key was not retained")
	}
	if v, _, ok := c.get(1); !ok || v != 1 {
		t.Fatalf("recently-used key was evicted over a stale one (ok=%v v=%d)", ok, v)
	}
}

func TestLookupFlightsCoalesce(t *testing.T) {
	lf := newLookupFlights()
	var fetches atomic.Int64
	var release sync.WaitGroup
	release.Add(1)
	fetch := func(ctx context.Context, keys []uint64, vals []uint16, found []bool) error {
		fetches.Add(1)
		release.Wait() // hold every first fetch open so others can pile on
		for i := range keys {
			vals[i] = uint16(keys[i])
			found[i] = true
		}
		return nil
	}
	keys := []uint64{10, 20, 30}
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	valss := make([][]uint16, callers)
	var started sync.WaitGroup
	started.Add(callers)
	for w := 0; w < callers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := make([]uint16, len(keys))
			found := make([]bool, len(keys))
			started.Done()
			errs[w] = lf.do(context.Background(), keys, vals, found, fetch)
			valss[w] = vals
		}(w)
	}
	started.Wait()
	// Let the in-flight fetch(es) finish; callers that arrived while one
	// was open shared it.
	release.Done()
	wg.Wait()
	for w := range errs {
		if errs[w] != nil {
			t.Fatalf("caller %d: %v", w, errs[w])
		}
		for i, k := range keys {
			if valss[w][i] != uint16(k) {
				t.Fatalf("caller %d got vals %v", w, valss[w])
			}
		}
	}
	if f := fetches.Load(); f >= callers {
		t.Fatalf("no coalescing: %d fetches for %d identical callers", f, callers)
	}
	if lf.coalesced.Load() == 0 {
		t.Fatal("coalesced counter did not move")
	}
	// Different batches never share a flight.
	other := []uint64{10, 20, 31}
	vals := make([]uint16, len(other))
	found := make([]bool, len(other))
	if err := lf.do(context.Background(), other, vals, found, fetch); err != nil {
		t.Fatal(err)
	}
	if vals[2] != 31 {
		t.Fatalf("distinct batch got shared results: %v", vals)
	}
}

// TestClientCacheServesWithoutWire proves the tiers actually remove
// round trips: after a first pass, identical lookups and level reads
// are answered without the server seeing any new request.
func TestClientCacheServesWithoutWire(t *testing.T) {
	res := fixtureTables(t)
	srv, addr := startServer(t, fixtureBackend(t))
	cl := dialClient(t, addr, nil) // caches on by default
	ctx := context.Background()

	var keys []uint64
	rng := rand.New(rand.NewSource(5))
	lv := res.Level(res.MaxCost)
	for i := 0; i < 300; i++ {
		keys = append(keys, uint64(lv.At(rng.Intn(lv.Len()))))
		keys = append(keys, uint64(randomPerm16(rng))) // mostly absent
	}
	vals1 := make([]uint16, len(keys))
	found1 := make([]bool, len(keys))
	if err := cl.LookupBatch(ctx, keys, vals1, found1); err != nil {
		t.Fatal(err)
	}
	out1 := make([]uint64, res.LevelLen(2))
	if err := cl.LevelKeys(ctx, 2, 0, out1); err != nil {
		t.Fatal(err)
	}

	before := srv.Stats()
	vals2 := make([]uint16, len(keys))
	found2 := make([]bool, len(keys))
	if err := cl.LookupBatch(ctx, keys, vals2, found2); err != nil {
		t.Fatal(err)
	}
	out2 := make([]uint64, res.LevelLen(2))
	if err := cl.LevelKeys(ctx, 2, 0, out2); err != nil {
		t.Fatal(err)
	}
	after := srv.Stats()
	if after.Lookups != before.Lookups || after.LevelReqs != before.LevelReqs {
		t.Fatalf("warm pass hit the wire: %+v -> %+v", before, after)
	}
	for i := range keys {
		if vals1[i] != vals2[i] || found1[i] != found2[i] {
			t.Fatalf("key %d: warm (%d,%v) != cold (%d,%v)", i, vals2[i], found2[i], vals1[i], found1[i])
		}
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("level key %d: warm %#x != cold %#x", i, out2[i], out1[i])
		}
	}

	st := cl.CacheStats()
	if st.KeyHits < uint64(len(keys)) || st.KeyMisses == 0 {
		t.Fatalf("key counters off: %+v", st)
	}
	if st.LevelHits == 0 || st.LevelMisses == 0 {
		t.Fatalf("level counters off: %+v", st)
	}
	if st.CacheBytes <= 0 || st.WireBytesRead == 0 || st.WireBytesWritten == 0 {
		t.Fatalf("byte counters off: %+v", st)
	}
}

// TestClientPartialHitSplitsBatch: a batch mixing cached and new keys
// sends only the misses over the wire.
func TestClientPartialHitSplitsBatch(t *testing.T) {
	res := fixtureTables(t)
	srv, addr := startServer(t, fixtureBackend(t))
	cl := dialClient(t, addr, nil)
	ctx := context.Background()

	lv := res.Level(1)
	warm := []uint64{uint64(lv.At(0))}
	if err := cl.LookupBatch(ctx, warm, make([]uint16, 1), make([]bool, 1)); err != nil {
		t.Fatal(err)
	}
	before := srv.Stats()
	mixed := []uint64{uint64(lv.At(0)), uint64(res.Level(2).At(0))}
	vals := make([]uint16, 2)
	found := make([]bool, 2)
	if err := cl.LookupBatch(ctx, mixed, vals, found); err != nil {
		t.Fatal(err)
	}
	after := srv.Stats()
	if moved := after.Keys - before.Keys; moved != 1 {
		t.Fatalf("partial hit sent %d keys over the wire, want 1 (the miss)", moved)
	}
	if !found[0] || !found[1] {
		t.Fatalf("mixed batch results wrong: %v", found)
	}
}

func TestClientCachesDisabled(t *testing.T) {
	srv, addr := startServer(t, fixtureBackend(t))
	cl := dialClient(t, addr, &ClientOptions{CacheKeys: -1, LevelCacheBytes: -1})
	ctx := context.Background()
	keys := []uint64{uint64(fixtureTables(t).Level(1).At(0))}
	for pass := 0; pass < 2; pass++ {
		if err := cl.LookupBatch(ctx, keys, make([]uint16, 1), make([]bool, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if st := srv.Stats(); st.Lookups != 2 {
		t.Fatalf("disabled caches still absorbed traffic: %+v", st)
	}
	st := cl.CacheStats()
	if st.KeyHits != 0 || st.LevelHits != 0 || st.CacheBytes != 0 {
		t.Fatalf("disabled caches report activity: %+v", st)
	}
	if st.WireBytesRead == 0 {
		t.Fatalf("wire counters must still count: %+v", st)
	}
}

// TestPipelinedRemoteMatchesLocal forces the remote scan through many
// tiny chunks — so the LevelKeys prefetch of chunk i+1 genuinely
// overlaps chunk i's LookupBatch, across level boundaries too — and
// requires byte-identical answers to the sequential local engine, cold
// and warm (the warm pass re-runs every spec against fully-primed
// caches).
func TestPipelinedRemoteMatchesLocal(t *testing.T) {
	res := fixtureTables(t)
	_, addr := startServer(t, fixtureBackend(t))
	cl := dialClient(t, addr, nil)

	localSynth, err := core.FromResult(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	localSynth.SetWorkers(1)
	remoteSynth, err := core.FromBackend(cl, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 4 representatives per chunk: a level-3 scan alone is dozens of
	// pipelined chunks.
	remoteSynth.SetBatchKeys(192)

	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	var specs []perm.Perm
	for i := 0; i < 10; i++ {
		specs = append(specs, randomCircuitPerm(rng, 5+rng.Intn(4)))
	}
	specs = append(specs, randomPerm16(rng), randomPerm16(rng))

	mitm := 0
	for pass, label := range []string{"cold", "warm"} {
		_ = pass
		for _, f := range specs {
			wantC, wantInfo, wantErr := localSynth.SynthesizeInfoCtx(ctx, f)
			gotC, gotInfo, gotErr := remoteSynth.SynthesizeInfoCtx(ctx, f)
			if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && !errors.Is(gotErr, core.ErrBeyondHorizon)) {
				t.Fatalf("%s spec %v: local err %v, remote err %v", label, f, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if wantInfo != gotInfo {
				t.Fatalf("%s spec %v: local info %+v, remote info %+v", label, f, wantInfo, gotInfo)
			}
			if wantC.String() != gotC.String() {
				t.Fatalf("%s spec %v: local circuit %v != remote %v", label, f, wantC, gotC)
			}
			if !wantInfo.Direct {
				mitm++
			}
		}
	}
	if mitm < 4 {
		t.Fatalf("only %d meet-in-the-middle answers; the pipelined scan was barely exercised", mitm)
	}
	if st := cl.CacheStats(); st.KeyHits == 0 || st.LevelHits == 0 {
		t.Fatalf("warm pass did not use the caches: %+v", st)
	}
}

// TestTinyBatchKeysMatchesLocal: a batch target below one reduced
// representative's 48-variant expansion must clamp the scratch up, not
// overflow it — SetBatchKeys(10) used to panic at the first
// meet-in-the-middle chunk.
func TestTinyBatchKeysMatchesLocal(t *testing.T) {
	res := fixtureTables(t)
	_, addr := startServer(t, fixtureBackend(t))
	cl := dialClient(t, addr, nil)
	localSynth, err := core.FromResult(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	localSynth.SetWorkers(1)
	remote, err := core.FromBackend(cl, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	remote.SetBatchKeys(10)

	rng := rand.New(rand.NewSource(33))
	ctx := context.Background()
	mitm := 0
	for i := 0; i < 8; i++ {
		f := randomCircuitPerm(rng, 5+rng.Intn(3))
		wantC, wantInfo, wantErr := localSynth.SynthesizeInfoCtx(ctx, f)
		gotC, gotInfo, gotErr := remote.SynthesizeInfoCtx(ctx, f)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("spec %v: local err %v, remote err %v", f, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if wantInfo != gotInfo || wantC.String() != gotC.String() {
			t.Fatalf("spec %v: local (%+v, %v) != remote (%+v, %v)", f, wantInfo, wantC, gotInfo, gotC)
		}
		if !wantInfo.Direct {
			mitm++
		}
	}
	if mitm == 0 {
		t.Fatal("no meet-in-the-middle query exercised the tiny batch")
	}
}

// TestWireBytesCountRetriedFrames: WireBytesWritten is the offered-load
// denominator, so a frame re-sent on the retry path must count once per
// attempt — the counter used to tick only after a successful flush,
// silently dropping every frame that died on a stale pooled connection.
func TestWireBytesCountRetriedFrames(t *testing.T) {
	local := fixtureBackend(t)
	srv1, err := NewServer(local)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go srv1.Serve(l)

	cl := dialClient(t, addr, &ClientOptions{Conns: 1, CacheKeys: -1, LevelCacheBytes: -1})
	ctx := context.Background()
	keys := []uint64{uint64(fixtureTables(t).Level(1).At(0))}
	vals := make([]uint16, 1)
	found := make([]bool, 1)

	before := cl.CacheStats()
	if err := cl.LookupBatch(ctx, keys, vals, found); err != nil {
		t.Fatal(err)
	}
	mid := cl.CacheStats()
	oneAttempt := mid.WireBytesWritten - before.WireBytesWritten
	if oneAttempt == 0 {
		t.Fatal("clean lookup wrote no counted bytes")
	}
	if mid.WireRetries != before.WireRetries {
		t.Fatalf("clean lookup retried: %+v", mid)
	}

	// Restart the server on the same address: the pooled connection is
	// now dead, so the identical lookup is written twice — once into the
	// stale socket, once on the redialed retry.
	srv1.Close()
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(local)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l2)
	t.Cleanup(func() { srv2.Close() })

	lbCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := cl.LookupBatch(lbCtx, keys, vals, found); err != nil || !found[0] {
		t.Fatalf("lookup after restart: %v (found %v)", err, found[0])
	}
	after := cl.CacheStats()
	retried := after.WireRetries - mid.WireRetries
	if retried == 0 {
		t.Fatal("restart did not exercise the retry path; the fixture is broken")
	}
	attempts := 1 + retried
	if got := after.WireBytesWritten - mid.WireBytesWritten; got != attempts*oneAttempt {
		t.Fatalf("retried lookup counted %d wire bytes over %d attempts, want %d (%d per attempt)",
			got, attempts, attempts*oneAttempt, oneAttempt)
	}
}

// TestFrameCodecAllocs guards the pooled frame codec: with warm scratch
// buffers, encoding and reading frames allocates nothing.
func TestFrameCodecAllocs(t *testing.T) {
	payload := make([]byte, 1024)
	var buf bytes.Buffer
	buf.Grow(4096)
	scratch := make([]byte, 4096)
	frame := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(100, func() {
		buf.Reset()
		out, err := appendFrame(frame[:0], opLookup, payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := buf.Write(out); err != nil {
			t.Fatal(err)
		}
		if _, _, err := readFrame(&buf, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("frame codec allocates %.1f times per round trip, want 0", allocs)
	}
}

// TestClientLookupAllocs guards the client's request path: a fully
// cache-hit batch allocates nothing, and even a wire round trip on a
// cache-disabled client stays at a handful of fixed-size allocations
// (the two per-chunk closures and context bookkeeping) — never a
// per-batch buffer.
func TestClientLookupAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc bounds are calibrated without race instrumentation (sync.Pool drops items under -race)")
	}
	res := fixtureTables(t)
	_, addr := startServer(t, fixtureBackend(t))
	ctx := context.Background()
	keys := make([]uint64, 64)
	lv := res.Level(res.MaxCost)
	for i := range keys {
		keys[i] = uint64(lv.At(i % lv.Len()))
	}
	vals := make([]uint16, len(keys))
	found := make([]bool, len(keys))

	cached := dialClient(t, addr, &ClientOptions{Conns: 1})
	if err := cached.LookupBatch(ctx, keys, vals, found); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := cached.LookupBatch(ctx, keys, vals, found); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("cache-hit LookupBatch allocates %.1f times, want 0", allocs)
	}

	wire := dialClient(t, addr, &ClientOptions{Conns: 1, CacheKeys: -1, LevelCacheBytes: -1})
	if err := wire.LookupBatch(ctx, keys, vals, found); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(50, func() {
		if err := wire.LookupBatch(ctx, keys, vals, found); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("wire LookupBatch allocates %.1f times per round trip, want ≤ 4", allocs)
	}
}
