package tablenet

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/perm"
	"repro/internal/tables"
)

// This file is the robustness contract's proof: every fault class the
// faultnet injector can produce — delays, resets, torn frames, dropped
// (blackholed) writes, corrupted bytes, refused connections — is driven
// against live servers, and the observable behaviour must be one of
// exactly two things: answers byte-identical to local serving, or a
// clean typed error within the caller's deadline. Never a wrong
// answer, never a hang.

// startFaultServer serves a backend through a fault injector and
// returns the injector and the address.
func startFaultServer(t testing.TB, b tables.Backend, opts faultnet.Options) (*faultnet.Injector, string) {
	t.Helper()
	srv, err := NewServer(b)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultnet.New(opts)
	go srv.Serve(inj.Listener(l))
	t.Cleanup(func() { srv.Close() })
	return inj, l.Addr().String()
}

// fastRetry is the test policy: same shape as production, milliseconds
// instead of tens of milliseconds, fixed jitter seed.
func fastRetry() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    6,
		Budget:         24,
		BaseBackoff:    2 * time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		AttemptTimeout: 500 * time.Millisecond,
		Seed:           1,
	}
}

// dialFaulty dials through a fault schedule: the handshake itself may
// be faulted, so the dial (which deliberately does not retry — it is
// the validation step) is retried by the test instead.
func dialFaulty(t testing.TB, addr string, opts *ClientOptions) *Client {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		cl, err := Dial(addr, opts)
		if err == nil {
			t.Cleanup(func() { cl.Close() })
			return cl
		}
		lastErr = err
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("dial through faults never succeeded: %v", lastErr)
	return nil
}

// testBatch builds a key batch mixing real table keys with random
// permutations (some present, some absent).
func testBatch(t testing.TB, rng *rand.Rand, n int) []uint64 {
	res := fixtureTables(t)
	keys := make([]uint64, n)
	for i := range keys {
		if rng.Intn(2) == 0 {
			lv := res.Level(1 + rng.Intn(res.MaxCost))
			keys[i] = uint64(lv.At(rng.Intn(lv.Len())))
		} else {
			keys[i] = uint64(randomPerm16(rng))
		}
	}
	return keys
}

// TestFaultMatrixLookupsIdentical drives batched lookups through every
// fault class and requires the answers to stay byte-identical to the
// local backend. The injector counters prove each class actually
// fired.
func TestFaultMatrixLookupsIdentical(t *testing.T) {
	local := fixtureBackend(t)
	cases := []struct {
		name  string
		opts  faultnet.Options
		fired func(faultnet.Counts) uint64
	}{
		{"delay", faultnet.Options{Seed: 11, Delay: 0.5, MaxDelay: 2 * time.Millisecond}, func(c faultnet.Counts) uint64 { return c.Delays }},
		{"reset", faultnet.Options{Seed: 12, Reset: 0.05}, func(c faultnet.Counts) uint64 { return c.Resets }},
		{"torn-write", faultnet.Options{Seed: 13, TornWrite: 0.08}, func(c faultnet.Counts) uint64 { return c.TornWrites }},
		{"corrupt", faultnet.Options{Seed: 14, Corrupt: 0.08}, func(c faultnet.Counts) uint64 { return c.Corruptions }},
		{"drop", faultnet.Options{Seed: 15, Drop: 0.05}, func(c faultnet.Counts) uint64 { return c.Drops }},
		{"mixed", faultnet.Options{Seed: 16, Reset: 0.02, TornWrite: 0.02, Drop: 0.02, Corrupt: 0.02, Delay: 0.2, MaxDelay: time.Millisecond},
			func(c faultnet.Counts) uint64 { return c.Resets + c.TornWrites + c.Drops + c.Corruptions + c.Delays }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj, addr := startFaultServer(t, local, tc.opts)
			// Caches off so every batch rides the wire through the faults.
			cl := dialFaulty(t, addr, &ClientOptions{Retry: fastRetry(), CacheKeys: -1, LevelCacheBytes: -1})
			rng := rand.New(rand.NewSource(99))
			for round := 0; round < 30; round++ {
				keys := testBatch(t, rng, 64)
				wantVals, wantOK := make([]uint16, len(keys)), make([]bool, len(keys))
				if err := local.LookupBatch(context.Background(), keys, wantVals, wantOK); err != nil {
					t.Fatal(err)
				}
				gotVals, gotOK := make([]uint16, len(keys)), make([]bool, len(keys))
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				err := cl.LookupBatch(ctx, keys, gotVals, gotOK)
				cancel()
				if err != nil {
					t.Fatalf("round %d: lookup through %s faults failed: %v", round, tc.name, err)
				}
				for i := range keys {
					if gotVals[i] != wantVals[i] || gotOK[i] != wantOK[i] {
						t.Fatalf("round %d key %d: got (%d,%v), local (%d,%v) — WRONG ANSWER under %s faults",
							round, i, gotVals[i], gotOK[i], wantVals[i], wantOK[i], tc.name)
					}
				}
			}
			if tc.fired(inj.Counts()) == 0 {
				t.Fatalf("%s schedule never fired: %+v", tc.name, inj.Counts())
			}
		})
	}
}

// TestFaultySynthesisIdentical runs the full query engine over a
// faulty wire and requires byte-identical circuits to local synthesis
// — the end-to-end form of the matrix above.
func TestFaultySynthesisIdentical(t *testing.T) {
	res := fixtureTables(t)
	inj, addr := startFaultServer(t, fixtureBackend(t), faultnet.Options{
		Seed: 21, Reset: 0.02, TornWrite: 0.02, Drop: 0.01, Corrupt: 0.02, Delay: 0.2, MaxDelay: time.Millisecond,
	})
	cl := dialFaulty(t, addr, &ClientOptions{Retry: fastRetry()})

	localSynth, err := core.FromResult(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	localSynth.SetWorkers(1)
	remoteSynth, err := core.FromBackend(cl, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 24; i++ {
		var f perm.Perm
		if i%5 == 4 {
			f = randomPerm16(rng)
		} else {
			f = randomCircuitPerm(rng, 1+rng.Intn(8))
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		wantC, wantInfo, wantErr := localSynth.SynthesizeInfoCtx(ctx, f)
		gotC, gotInfo, gotErr := remoteSynth.SynthesizeInfoCtx(ctx, f)
		cancel()
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("spec %d: local err %v, faulty-wire err %v", i, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if wantInfo.Cost != gotInfo.Cost || wantC.String() != gotC.String() {
			t.Fatalf("spec %d: faulty wire synthesized %v (cost %d), local %v (cost %d)",
				i, gotC, gotInfo.Cost, wantC, wantInfo.Cost)
		}
	}
	if c := inj.Counts(); c.Resets+c.TornWrites+c.Drops+c.Corruptions == 0 {
		t.Fatalf("fault schedule never fired: %+v", c)
	}
}

// TestShardKillUnavailableThenRecovery: a SIGKILLed shard yields a
// clean ErrUnavailable after the retry budget — well inside the
// caller's deadline — and the same client recovers without rebuild
// once the shard returns.
func TestShardKillUnavailableThenRecovery(t *testing.T) {
	local := fixtureBackend(t)
	inj, addr := startFaultServer(t, local, faultnet.Options{})
	cl := dialFaulty(t, addr, &ClientOptions{Conns: 1, Retry: fastRetry(), CacheKeys: -1, LevelCacheBytes: -1})
	rng := rand.New(rand.NewSource(3))
	keys := testBatch(t, rng, 32)
	vals, ok := make([]uint16, len(keys)), make([]bool, len(keys))

	if err := cl.LookupBatch(context.Background(), keys, vals, ok); err != nil {
		t.Fatalf("healthy lookup: %v", err)
	}

	inj.SetRefuse(true)
	inj.KillLive()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	start := time.Now()
	err := cl.LookupBatch(ctx, keys, vals, ok)
	elapsed := time.Since(start)
	cancel()
	if err == nil {
		t.Fatal("lookup against a killed shard reported success")
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("killed shard surfaced %v, want ErrUnavailable", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("failure took %v, budget should cap it well under the deadline", elapsed)
	}

	// The shard comes back; the next request dials fresh and succeeds —
	// dial-fail → backoff → recovery inside one retry loop.
	inj.SetRefuse(false)
	recoverCtx, rcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer rcancel()
	var rerr error
	go func() {
		time.Sleep(30 * time.Millisecond) // flip mid-loop is covered elsewhere; here just recover
	}()
	for i := 0; i < 50; i++ {
		if rerr = cl.LookupBatch(recoverCtx, keys, vals, ok); rerr == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rerr != nil {
		t.Fatalf("client did not recover after shard returned: %v", rerr)
	}
	wantVals, wantOK := make([]uint16, len(keys)), make([]bool, len(keys))
	if err := local.LookupBatch(context.Background(), keys, wantVals, wantOK); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if vals[i] != wantVals[i] || ok[i] != wantOK[i] {
			t.Fatalf("post-recovery answer diverged at key %d", i)
		}
	}
}

// TestDeadlinePropagation: when the query deadline is the binding
// constraint (a generous retry policy against a dead shard), the
// caller gets context.DeadlineExceeded promptly — the ctx cause, not a
// transport symptom, and never a hang.
func TestDeadlinePropagation(t *testing.T) {
	inj, addr := startFaultServer(t, fixtureBackend(t), faultnet.Options{})
	cl := dialFaulty(t, addr, &ClientOptions{Conns: 1, CacheKeys: -1, LevelCacheBytes: -1,
		Retry: RetryPolicy{MaxAttempts: 100, Budget: 1000, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Seed: 1}})
	inj.SetRefuse(true)
	inj.KillLive()
	rng := rand.New(rand.NewSource(4))
	keys := testBatch(t, rng, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := cl.LookupBatch(ctx, keys, make([]uint16, len(keys)), make([]bool, len(keys)))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("deadline of 250ms honoured only after %v", elapsed)
	}
}

// TestMidBatchConnReset: a pooled connection reset between batches (and
// under the batch, via KillLive) is absorbed by the retry path with
// byte-identical results.
func TestMidBatchConnReset(t *testing.T) {
	local := fixtureBackend(t)
	inj, addr := startFaultServer(t, local, faultnet.Options{})
	cl := dialFaulty(t, addr, &ClientOptions{Conns: 2, Retry: fastRetry(), CacheKeys: -1, LevelCacheBytes: -1})
	rng := rand.New(rand.NewSource(6))
	for round := 0; round < 10; round++ {
		keys := testBatch(t, rng, 48)
		wantVals, wantOK := make([]uint16, len(keys)), make([]bool, len(keys))
		if err := local.LookupBatch(context.Background(), keys, wantVals, wantOK); err != nil {
			t.Fatal(err)
		}
		inj.KillLive() // every pooled conn dies between (or under) batches
		gotVals, gotOK := make([]uint16, len(keys)), make([]bool, len(keys))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := cl.LookupBatch(ctx, keys, gotVals, gotOK)
		cancel()
		if err != nil {
			t.Fatalf("round %d: reset mid-stream not absorbed: %v", round, err)
		}
		for i := range keys {
			if gotVals[i] != wantVals[i] || gotOK[i] != wantOK[i] {
				t.Fatalf("round %d: answer diverged at key %d after reset", round, i)
			}
		}
	}
}

// TestReplicatedRouterFailover is the tentpole end-to-end: 2 hash
// ranges × 2 replicas, one replica SIGKILLed — lookups stay
// byte-identical (failover), the health tracker ejects the dead
// replica, /healthz semantics read degraded-not-down, a fully dead
// range turns the fleet down, and the prober re-admits the replica
// when it returns.
func TestReplicatedRouterFailover(t *testing.T) {
	local := fixtureBackend(t)
	type rep struct {
		inj  *faultnet.Injector
		addr string
	}
	var reps [4]rep
	for i := range reps {
		inj, addr := startFaultServer(t, local, faultnet.Options{})
		reps[i] = rep{inj, addr}
	}
	copts := &ClientOptions{Conns: 2, CacheKeys: -1, LevelCacheBytes: -1,
		Retry: RetryPolicy{MaxAttempts: 2, Budget: 4, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, AttemptTimeout: 500 * time.Millisecond, Seed: 1}}
	groups := make([][]tables.Backend, 2)
	for g := 0; g < 2; g++ {
		for i := 0; i < 2; i++ {
			groups[g] = append(groups[g], dialFaulty(t, reps[2*g+i].addr, copts))
		}
	}
	router, err := NewReplicatedRouter(groups, RouterOptions{
		EjectAfter: 2, EjectBase: 50 * time.Millisecond, EjectMax: 200 * time.Millisecond,
		ProbeInterval: 25 * time.Millisecond, ProbeTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if router.Meta().Source != "router(2 x4)" {
		t.Fatalf("meta source = %q", router.Meta().Source)
	}

	rng := rand.New(rand.NewSource(8))
	checkIdentical := func(tag string) {
		t.Helper()
		keys := testBatch(t, rng, 96)
		wantVals, wantOK := make([]uint16, len(keys)), make([]bool, len(keys))
		if err := local.LookupBatch(context.Background(), keys, wantVals, wantOK); err != nil {
			t.Fatal(err)
		}
		gotVals, gotOK := make([]uint16, len(keys)), make([]bool, len(keys))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := router.LookupBatch(ctx, keys, gotVals, gotOK); err != nil {
			t.Fatalf("%s: routed lookup failed: %v", tag, err)
		}
		for i := range keys {
			if gotVals[i] != wantVals[i] || gotOK[i] != wantOK[i] {
				t.Fatalf("%s: routed answer diverged at key %d", tag, i)
			}
		}
	}

	checkIdentical("healthy fleet")

	// SIGKILL replica 0 of range 0.
	reps[0].inj.SetRefuse(true)
	reps[0].inj.KillLive()
	for round := 0; round < 8; round++ {
		checkIdentical("one replica down")
	}

	// The tracker must have ejected it by now (EjectAfter=2 and the
	// rounds above hit it repeatedly whenever rotation picked it first).
	ejected := false
	for _, h := range router.HealthStats() {
		if h.Addr == reps[0].addr && h.State != "healthy" && h.Ejections > 0 {
			ejected = true
		}
	}
	if !ejected {
		t.Fatalf("dead replica never ejected: %+v", router.HealthStats())
	}

	// Degraded, not down: every range still has a live replica.
	fh := router.Health(context.Background())
	if !fh.Degraded || fh.Down() {
		t.Fatalf("one dead replica: degraded=%v down=%v, want degraded, not down", fh.Degraded, fh.Down())
	}

	// Kill its sibling too: range 0 is now dark — loud typed failure
	// naming the range, and the fleet reads down.
	reps[1].inj.SetRefuse(true)
	reps[1].inj.KillLive()
	keys := testBatch(t, rng, 96)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = router.LookupBatch(ctx, keys, make([]uint16, len(keys)), make([]bool, len(keys)))
	cancel()
	if err == nil {
		t.Fatal("batch spanning a dark range reported success")
	}
	if !strings.Contains(err.Error(), "replicas failed") {
		t.Fatalf("dark-range error does not name the failure: %v", err)
	}
	fh = router.Health(context.Background())
	if !fh.Down() || len(fh.DownRanges) != 1 || fh.DownRanges[0] != 0 {
		t.Fatalf("dark range 0 not reported down: %+v", fh.DownRanges)
	}

	// Both replicas return; the background prober re-admits them and
	// full service resumes.
	reps[0].inj.SetRefuse(false)
	reps[1].inj.SetRefuse(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		keys := testBatch(t, rng, 64)
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		err := router.LookupBatch(ctx, keys, make([]uint16, len(keys)), make([]bool, len(keys)))
		cancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never recovered after replicas returned: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	checkIdentical("recovered fleet")
}

// TestRouterLevelFailoverNamesReplicas: a level read with every replica
// dead fails with an error naming each failing replica address
// (operators grep this line first).
func TestRouterLevelFailoverNamesReplicas(t *testing.T) {
	local := fixtureBackend(t)
	inj1, addr1 := startFaultServer(t, local, faultnet.Options{})
	inj2, addr2 := startFaultServer(t, local, faultnet.Options{})
	copts := &ClientOptions{Conns: 1, CacheKeys: -1, LevelCacheBytes: -1,
		Retry: RetryPolicy{MaxAttempts: 2, Budget: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 1}}
	cl1 := dialFaulty(t, addr1, copts)
	cl2 := dialFaulty(t, addr2, copts)
	router, err := NewReplicatedRouter([][]tables.Backend{{cl1, cl2}}, RouterOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	for _, inj := range []*faultnet.Injector{inj1, inj2} {
		inj.SetRefuse(true)
		inj.KillLive()
	}
	out := make([]uint64, fixtureTables(t).LevelLen(1))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	lerr := router.LevelKeys(ctx, 1, 0, out)
	if lerr == nil {
		t.Fatal("level read with all replicas dead reported success")
	}
	for _, addr := range []string{addr1, addr2} {
		if !strings.Contains(lerr.Error(), addr) {
			t.Fatalf("all-replicas-failed error does not name %s: %v", addr, lerr)
		}
	}
}

// TestRouterCheckBoundedByProbeTimeout: a replica that blackholes its
// responses must not stall Check past the per-probe timeout.
func TestRouterCheckBoundedByProbeTimeout(t *testing.T) {
	local := fixtureBackend(t)
	// Every post-handshake response dropped: pings are received and
	// never answered — the stalling case per-probe timeouts exist for.
	_, addr := startFaultServer(t, local, faultnet.Options{Seed: 31, Drop: 1, SkipOps: 1})
	_, addrOK := startFaultServer(t, local, faultnet.Options{})
	copts := &ClientOptions{Conns: 1, CacheKeys: -1, LevelCacheBytes: -1,
		Retry: RetryPolicy{MaxAttempts: 1, Budget: 1, Seed: 1}}
	cl := dialFaulty(t, addr, copts)
	clOK := dialFaulty(t, addrOK, copts)
	router, err := NewReplicatedRouter([][]tables.Backend{{cl, clOK}},
		RouterOptions{ProbeInterval: -1, ProbeTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	start := time.Now()
	statuses := router.Check(context.Background())
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("Check took %v against a blackholed replica, want ≲ probe timeout", elapsed)
	}
	var stalled, healthy bool
	for _, st := range statuses {
		if st.Addr == addr && st.Err != nil {
			stalled = true
		}
		if st.Addr == addrOK && st.Err == nil {
			healthy = true
		}
	}
	if !stalled || !healthy {
		t.Fatalf("statuses misreported: %+v", statuses)
	}
}

// TestRetryLeavesNoGoroutines: a client hammered through failures and
// recovery, and a router with a live prober, must not leak goroutines
// after Close.
func TestRetryLeavesNoGoroutines(t *testing.T) {
	local := fixtureBackend(t)
	before := runtime.NumGoroutine()

	srv, err := NewServer(local)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultnet.New(faultnet.Options{Seed: 41, Reset: 0.1, TornWrite: 0.1})
	go srv.Serve(inj.Listener(l))
	addr := l.Addr().String()

	cl, err := Dial(addr, &ClientOptions{Conns: 2, Retry: fastRetry(), CacheKeys: -1, LevelCacheBytes: -1})
	for i := 0; err != nil && i < 50; i++ {
		time.Sleep(5 * time.Millisecond)
		cl, err = Dial(addr, &ClientOptions{Conns: 2, Retry: fastRetry(), CacheKeys: -1, LevelCacheBytes: -1})
	}
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewReplicatedRouter([][]tables.Backend{{cl}},
		RouterOptions{ProbeInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 10; round++ {
		keys := testBatch(t, rng, 32)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		router.LookupBatch(ctx, keys, make([]uint16, len(keys)), make([]bool, len(keys)))
		cancel()
		if round == 5 {
			inj.KillLive()
		}
	}
	if err := router.Close(); err != nil {
		t.Logf("router close: %v", err)
	}
	srv.Close()

	// Goroutine counts settle asynchronously (conn teardown, timer
	// goroutines); poll instead of asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: before %d, after %d\n%s", before, now, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
