package tablenet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/tables"
)

// ErrTierMismatch is returned by NewFederation when the offered tiers do
// not form one consistent table family: different alphabet fingerprints
// or reductions, duplicate depths, or level prefixes that disagree. A
// federation over mismatched tiers could answer the same query two
// different ways depending on where it happened to resolve, so the
// wiring is refused typed, at construction time.
var ErrTierMismatch = errors.New("tablenet: incompatible federation tiers")

// Federation fronts an ordered list of per-k fleets as one
// tables.Backend, exploiting the paper's central empirical fact: the
// cost distribution of 4-bit reversible functions is overwhelmingly
// bottom-heavy, so the vast majority of probes resolve inside a small-k
// table that is a few MB and permanently cache-hot. LookupBatch probes
// the shallowest tier first and escalates only the keys it does not
// hold — keys whose cost exceeds that tier's depth — to the next deeper
// tier, so the big-k fleet only ever sees the rare hard traffic.
//
// Escalation preserves byte-identical answers because every tier is
// built from the same alphabet under the same reduction: BFS expansion
// is deterministic, so a shallow table's level lists and packed values
// are exact prefixes of a deeper table's. NewFederation validates
// exactly that (fingerprint, reduction, level-count prefix agreement)
// and refuses mismatched tiers with ErrTierMismatch. Meta() is the top
// tier's geometry, so a query engine driving a federation plans scans
// exactly as it would against the deepest fleet alone — a federated
// answer is bit-for-bit the big-k answer, just cheaper to produce.
//
// Tier outages degrade, not fail: a lower tier whose probe errors has
// its whole sub-batch escalated to the next tier (counted in
// TierErrors), so the federation collapses gracefully to big-k-only
// serving when a small fleet dies. Only the top tier's failure fails a
// query — it is the only tier whose miss is authoritative.
type Federation struct {
	tiers []*fedTier
	meta  tables.Meta
}

// fedTier is one member fleet plus its routing counters.
type fedTier struct {
	b       tables.Backend
	meta    tables.Meta
	horizon int

	probes      atomic.Uint64
	hits        atomic.Uint64
	escalations atomic.Uint64
	levelReads  atomic.Uint64
	tierErrors  atomic.Uint64
}

// NewFederation builds a federation over the given fleets (each
// typically a *Router or *SwapBackend, but any tables.Backend serves).
// Tiers are ordered by table depth internally, so callers may pass them
// in any order; two tiers of equal depth are refused — there is no
// meaningful escalation between them. On success the federation owns
// the backends: Close closes them all.
func NewFederation(backends []tables.Backend) (*Federation, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("tablenet: federation needs at least one tier")
	}
	tiers := make([]*fedTier, len(backends))
	for i, b := range backends {
		if b == nil {
			return nil, fmt.Errorf("tablenet: federation tier %d is nil", i)
		}
		m := b.Meta()
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("tablenet: federation tier %d: %w", i, err)
		}
		tiers[i] = &fedTier{b: b, meta: m, horizon: m.NormHorizon()}
	}
	sort.SliceStable(tiers, func(i, j int) bool { return tiers[i].meta.K < tiers[j].meta.K })
	base := tiers[0].meta
	for i, t := range tiers[1:] {
		m := t.meta
		if m.Fingerprint != base.Fingerprint {
			return nil, fmt.Errorf("%w: tier k=%d built over a different alphabet than tier k=%d", ErrTierMismatch, m.K, base.K)
		}
		if m.Reduced != base.Reduced {
			return nil, fmt.Errorf("%w: tier k=%d reduction %v, tier k=%d reduction %v", ErrTierMismatch, m.K, m.Reduced, base.K, base.Reduced)
		}
		if m.K == tiers[i].meta.K {
			return nil, fmt.Errorf("%w: two tiers of depth k=%d", ErrTierMismatch, m.K)
		}
		// BFS determinism: a shallower table's levels must be exact
		// prefixes of every deeper table's. A disagreeing count means the
		// tiers did not come from the same build family, and escalated
		// answers would not be byte-identical.
		for c, n := range tiers[i].meta.LevelCounts {
			if m.LevelCounts[c] != n {
				return nil, fmt.Errorf("%w: level %d holds %d representatives at k=%d but %d at k=%d", ErrTierMismatch, c, tiers[i].meta.LevelCounts[c], tiers[i].meta.K, m.LevelCounts[c], m.K)
			}
		}
	}
	top := tiers[len(tiers)-1].meta
	meta := top
	meta.LevelCounts = append([]int(nil), top.LevelCounts...)
	meta.Source = fmt.Sprintf("federation(%d)", len(tiers))
	return &Federation{tiers: tiers, meta: meta}, nil
}

// Meta returns the top tier's table geometry: the federation answers
// exactly what its deepest fleet answers, the shallower tiers are pure
// acceleration.
func (f *Federation) Meta() tables.Meta { return f.meta }

// fedScratch is the pooled per-call escalation workspace.
type fedScratch struct {
	idx   []int
	keys  []uint64
	vals  []uint16
	found []bool
}

var fedPool = sync.Pool{New: func() any { return new(fedScratch) }}

func (sc *fedScratch) grow(n int) {
	if cap(sc.keys) < n {
		sc.idx = make([]int, n)
		sc.keys = make([]uint64, n)
		sc.vals = make([]uint16, n)
		sc.found = make([]bool, n)
	}
}

// LookupBatch implements tables.Backend. The whole batch probes the
// shallowest tier in place; only the keys that tier does not hold are
// gathered and escalated, tier by tier, until the top tier's answer —
// found or not — is final. A non-top tier that fails outright (its
// whole fleet unreachable) escalates its entire sub-batch instead of
// failing the query.
func (f *Federation) LookupBatch(ctx context.Context, keys []uint64, vals []uint16, found []bool) error {
	if len(vals) != len(keys) || len(found) != len(keys) {
		return fmt.Errorf("tablenet: LookupBatch slice lengths differ (%d/%d/%d)", len(keys), len(vals), len(found))
	}
	if len(f.tiers) == 1 {
		t := f.tiers[0]
		t.probes.Add(uint64(len(keys)))
		err := t.b.LookupBatch(ctx, keys, vals, found)
		if err == nil {
			t.hits.Add(countFound(found))
		}
		return err
	}
	if len(keys) == 0 {
		return nil
	}
	sc := fedPool.Get().(*fedScratch)
	defer fedPool.Put(sc)
	sc.grow(len(keys))

	// Tier 0 probes straight into the caller's slices — the common case
	// (everything resolves shallow) finishes with zero scatter work.
	t0 := f.tiers[0]
	t0.probes.Add(uint64(len(keys)))
	missIdx := sc.idx[:0]
	if err := t0.b.LookupBatch(ctx, keys, vals, found); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		t0.tierErrors.Add(1)
		for i := range keys {
			missIdx = append(missIdx, i)
		}
	} else {
		for i, ok := range found {
			if !ok {
				missIdx = append(missIdx, i)
			}
		}
		t0.hits.Add(uint64(len(keys) - len(missIdx)))
	}

	for ti := 1; ti < len(f.tiers) && len(missIdx) > 0; ti++ {
		f.tiers[ti-1].escalations.Add(uint64(len(missIdx)))
		t := f.tiers[ti]
		t.probes.Add(uint64(len(missIdx)))
		subKeys := sc.keys[:len(missIdx)]
		subVals := sc.vals[:len(missIdx)]
		subFound := sc.found[:len(missIdx)]
		for j, i := range missIdx {
			subKeys[j] = keys[i]
		}
		if err := t.b.LookupBatch(ctx, subKeys, subVals, subFound); err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			t.tierErrors.Add(1)
			if ti == len(f.tiers)-1 {
				// The top tier is the only authoritative one; with it
				// gone the remaining keys are unanswerable.
				return err
			}
			continue // whole sub-batch escalates to the next tier
		}
		hits := uint64(0)
		next := missIdx[:0]
		for j, i := range missIdx {
			vals[i], found[i] = subVals[j], subFound[j]
			if subFound[j] {
				hits++
			} else {
				next = append(next, i)
			}
		}
		t.hits.Add(hits)
		missIdx = next
	}
	return nil
}

// LookupBatchBounded implements tables.BoundedLookuper — the
// cost-horizon routing path. The caller has promised it only needs keys
// present with minimal cost ≤ bound, so the whole batch goes straight
// to the shallowest tier whose depth covers the bound: that tier is
// authoritative for everything the caller can use, so a miss there is
// final — no escalation, and no key is ever probed twice. This is what
// keeps a federated meet-in-the-middle scan at exactly one probe per
// candidate (the scan's residue bound picks the tier) instead of
// walking every key through the tier chain. If the chosen tier errors
// the batch fails over to the next deeper tier (counted in TierErrors);
// the query fails only when every covering tier is unreachable.
func (f *Federation) LookupBatchBounded(ctx context.Context, keys []uint64, vals []uint16, found []bool, bound int) error {
	if len(vals) != len(keys) || len(found) != len(keys) {
		return fmt.Errorf("tablenet: LookupBatchBounded slice lengths differ (%d/%d/%d)", len(keys), len(vals), len(found))
	}
	start := len(f.tiers) - 1
	if bound >= 0 {
		for i, t := range f.tiers {
			if t.meta.K >= bound {
				start = i
				break
			}
		}
	}
	var errs []error
	for ti := start; ti < len(f.tiers); ti++ {
		t := f.tiers[ti]
		t.probes.Add(uint64(len(keys)))
		err := t.b.LookupBatch(ctx, keys, vals, found)
		if err == nil {
			t.hits.Add(countFound(found))
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		t.tierErrors.Add(1)
		errs = append(errs, fmt.Errorf("tier k=%d: %w", t.meta.K, err))
	}
	return fmt.Errorf("tablenet: bounded lookup (bound %d) failed on every covering tier: %w", bound, errors.Join(errs...))
}

func countFound(found []bool) uint64 {
	n := uint64(0)
	for _, ok := range found {
		if ok {
			n++
		}
	}
	return n
}

// LevelKeys implements tables.Backend: level c is served by the
// shallowest tier that holds it — its copy is byte-identical to every
// deeper tier's (BFS determinism) and far more likely page-cache-hot —
// failing over to deeper tiers if the preferred one errors.
func (f *Federation) LevelKeys(ctx context.Context, c, lo int, out []uint64) error {
	if c < 0 || c > f.meta.K {
		return fmt.Errorf("tablenet: level %d outside horizon %d", c, f.meta.K)
	}
	var errs []error
	for _, t := range f.tiers {
		if c > t.meta.K {
			continue
		}
		t.levelReads.Add(1)
		err := t.b.LevelKeys(ctx, c, lo, out)
		if err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		t.tierErrors.Add(1)
		errs = append(errs, fmt.Errorf("tier k=%d: %w", t.meta.K, err))
	}
	return fmt.Errorf("tablenet: level %d unreadable on every holding tier: %w", c, errors.Join(errs...))
}

// TierStats snapshots each tier's routing counters, shallowest first —
// the /stats and /metrics view of how much traffic escapes each tier.
func (f *Federation) TierStats() []tables.TierStats {
	out := make([]tables.TierStats, len(f.tiers))
	for i, t := range f.tiers {
		out[i] = tables.TierStats{
			K:           t.meta.K,
			Horizon:     t.horizon,
			Source:      t.meta.Source,
			Probes:      t.probes.Load(),
			Hits:        t.hits.Load(),
			Escalations: t.escalations.Load(),
			LevelReads:  t.levelReads.Load(),
			TierErrors:  t.tierErrors.Load(),
		}
		if cs, ok := t.b.(tables.CacheStatser); ok {
			c := cs.CacheStats()
			out[i].Cache = &c
		}
	}
	return out
}

// CacheStats aggregates every tier's client-cache counters (the
// CacheStatser view a federated daemon's /stats embeds).
func (f *Federation) CacheStats() tables.CacheStats {
	var st tables.CacheStats
	for _, t := range f.tiers {
		if cs, ok := t.b.(tables.CacheStatser); ok {
			st.Add(cs.CacheStats())
		}
	}
	return st
}

// HealthStats concatenates the per-replica trackers of every tier that
// keeps them, shallowest tier first.
func (f *Federation) HealthStats() []tables.Health {
	var out []tables.Health
	for _, t := range f.tiers {
		if hs, ok := t.b.(tables.HealthStatser); ok {
			out = append(out, hs.HealthStats()...)
		}
	}
	return out
}

// Check probes every tier that supports probing and concatenates the
// statuses (shallowest tier first); tiers without a Check are assumed
// reachable — they are in-process.
func (f *Federation) Check(ctx context.Context) []ShardStatus {
	var out []ShardStatus
	for _, t := range f.tiers {
		if c, ok := t.b.(interface {
			Check(ctx context.Context) []ShardStatus
		}); ok {
			out = append(out, c.Check(ctx)...)
		}
	}
	return out
}

// Health folds tier health into the federation's /healthz contract: the
// federation is Down only when the TOP tier is down — it alone answers
// every query, so with it reachable the federation still serves
// everything (slower). Any lower-tier outage, and any tier's own
// degradation, surfaces as Degraded.
func (f *Federation) Health(ctx context.Context) FleetHealth {
	var out FleetHealth
	for i, t := range f.tiers {
		h, ok := t.b.(interface {
			Health(ctx context.Context) FleetHealth
		})
		if !ok {
			continue
		}
		th := h.Health(ctx)
		out.Replicas = append(out.Replicas, th.Replicas...)
		if th.Degraded {
			out.Degraded = true
		}
		if th.Down() {
			if i == len(f.tiers)-1 {
				out.DownRanges = append(out.DownRanges, th.DownRanges...)
			} else {
				out.Degraded = true
			}
		}
	}
	return out
}

// DrainRerouted sums the tiers' drain-reroute counters.
func (f *Federation) DrainRerouted() uint64 {
	var n uint64
	for _, t := range f.tiers {
		if d, ok := t.b.(interface{ DrainRerouted() uint64 }); ok {
			n += d.DrainRerouted()
		}
	}
	return n
}

// OwnershipMismatches sums the tiers' ownership-refusal counters.
func (f *Federation) OwnershipMismatches() uint64 {
	var n uint64
	for _, t := range f.tiers {
		if o, ok := t.b.(interface{ OwnershipMismatches() uint64 }); ok {
			n += o.OwnershipMismatches()
		}
	}
	return n
}

// Residency concatenates per-replica store residency across tiers.
func (f *Federation) Residency(ctx context.Context) []ShardResidency {
	var out []ShardResidency
	for _, t := range f.tiers {
		if r, ok := t.b.(interface {
			Residency(ctx context.Context) []ShardResidency
		}); ok {
			out = append(out, r.Residency(ctx)...)
		}
	}
	return out
}

// Tiers returns the number of tiers.
func (f *Federation) Tiers() int { return len(f.tiers) }

// TierForCost implements tables.TierResolver: the index of the
// shallowest tier whose cost horizon covers cost — the tier
// LookupBatchBounded routes a bound-cost probe to first and, when the
// tiers are healthy, the one that answers it. Costs beyond every
// horizon report the deepest tier (answering them exhausted the whole
// escalation chain).
func (f *Federation) TierForCost(cost int) int {
	for i, t := range f.tiers {
		if cost <= t.horizon {
			return i
		}
	}
	return len(f.tiers) - 1
}

// Close closes every tier.
func (f *Federation) Close() error {
	var errs []error
	for _, t := range f.tiers {
		if err := t.b.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

var (
	_ tables.Backend         = (*Federation)(nil)
	_ tables.BoundedLookuper = (*Federation)(nil)
	_ tables.CacheStatser    = (*Federation)(nil)
	_ tables.HealthStatser   = (*Federation)(nil)
	_ tables.TierStatser     = (*Federation)(nil)
)
