package tablenet

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bfs"
	"repro/internal/faultnet"
	"repro/internal/tables"
	"repro/internal/tablesio"
)

// This file proves the zero-downtime fleet contract end to end: split
// stores compose through the router byte-identically to local serving,
// miswired ownership is refused with typed errors (never wrong
// answers), topology swaps are atomic under load, draining shards shed
// new work without dropping accepted work, and a rolling restart of
// every shard under sustained queries loses nothing.

// loadSplitPartial cuts range i of n from res through the real store
// path — SaveSplitFile, then an AllowSplit load — so the tests exercise
// exactly what a shard process mounts.
func loadSplitPartial(t testing.TB, res *bfs.Result, n, i int) *tables.Partial {
	t.Helper()
	p := filepath.Join(t.TempDir(), "split")
	if err := tablesio.SaveSplitFile(p, res, n, i); err != nil {
		t.Fatal(err)
	}
	sres, info, err := tablesio.LoadFile(p, bfs.GateAlphabet(), &tablesio.LoadOptions{AllowSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Split == nil {
		t.Fatal("split store loaded without split metadata")
	}
	if sres.Frozen != nil {
		t.Cleanup(func() { sres.Frozen.Close() })
	}
	part, err := tables.NewPartial(sres, info.Split)
	if err != nil {
		t.Fatal(err)
	}
	return part
}

// TestSplitFleetByteIdentity: a 2x2 fleet of 1/2-split stores, wired by
// topology assignment, answers every lookup and every level read
// byte-identically to the full local table.
func TestSplitFleetByteIdentity(t *testing.T) {
	res := fixtureTables(t)
	local := fixtureBackend(t)
	const ranges, repl = 2, 2
	var members []string
	for g := 0; g < ranges; g++ {
		for r := 0; r < repl; r++ {
			_, addr := startServer(t, loadSplitPartial(t, res, ranges, g))
			members = append(members, addr)
		}
	}
	topo := &Topology{Generation: 1, Ranges: ranges, Replication: repl, Members: members}
	groups, err := BuildFleet(topo, func(addr string) (tables.Backend, error) {
		return Dial(addr, &ClientOptions{Conns: 1})
	})
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewReplicatedRouter(groups, RouterOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	for g, reps := range groups {
		if len(reps) != repl {
			t.Fatalf("range %d got %d replicas, want %d (ownership filter broken)", g, len(reps), repl)
		}
	}
	if got, want := router.Meta().Entries, res.TotalStored(); got != want {
		t.Fatalf("fleet meta declares %d entries, table set has %d", got, want)
	}

	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	for c := 0; c <= res.MaxCost; c++ {
		lv := res.Level(c)
		keys := make([]uint64, lv.Len(), lv.Len()+8)
		for j := range keys {
			keys[j] = uint64(lv.At(j))
		}
		// A few keys the table does not hold, mixed in: absence must
		// also be identical.
		for j := 0; j < 8; j++ {
			keys = append(keys, rng.Uint64())
		}
		vals := make([]uint16, len(keys))
		found := make([]bool, len(keys))
		if err := router.LookupBatch(ctx, keys, vals, found); err != nil {
			t.Fatalf("level %d lookups: %v", c, err)
		}
		for j, k := range keys {
			want, wantOK := res.LookupRaw(k)
			if found[j] != wantOK || (wantOK && vals[j] != want) {
				t.Fatalf("key %#x: fleet (%#x, %v), local (%#x, %v)", k, vals[j], found[j], want, wantOK)
			}
		}
		got := make([]uint64, lv.Len())
		want := make([]uint64, lv.Len())
		if err := router.LevelKeys(ctx, c, 0, got); err != nil {
			t.Fatalf("level %d dense read: %v", c, err)
		}
		if err := local.LevelKeys(ctx, c, 0, want); err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("level %d position %d: fleet %#x, local %#x", c, j, got[j], want[j])
			}
		}
	}
	// A partial window (lo != 0) must merge back just as exactly.
	c := res.MaxCost
	if n := res.Level(c).Len(); n > 4 {
		got := make([]uint64, n-3)
		want := make([]uint64, n-3)
		if err := router.LevelKeys(ctx, c, 2, got); err != nil {
			t.Fatal(err)
		}
		if err := local.LevelKeys(ctx, c, 2, want); err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("windowed level read diverges at %d", j)
			}
		}
	}
}

// TestFleetOwnershipRejection: every way to wire a shard into a range
// it does not own must fail with ErrOwnership at wiring time — typed
// refusal, never wrong answers.
func TestFleetOwnershipRejection(t *testing.T) {
	res := fixtureTables(t)
	t.Run("miswired groups", func(t *testing.T) {
		p0 := loadSplitPartial(t, res, 2, 0)
		p1 := loadSplitPartial(t, res, 2, 1)
		// Ranges swapped: each shard wired into the other's range.
		_, err := NewReplicatedRouter([][]tables.Backend{{p1}, {p0}}, RouterOptions{ProbeInterval: -1})
		if !errors.Is(err, ErrOwnership) {
			t.Fatalf("swapped wiring: err = %v, want ErrOwnership", err)
		}
	})
	t.Run("over the wire", func(t *testing.T) {
		_, addr := startServer(t, loadSplitPartial(t, res, 2, 1))
		cl := dialClient(t, addr, &ClientOptions{Conns: 1})
		// One range = the full space; a half-owning shard cannot cover it.
		_, err := NewRouter([]tables.Backend{cl})
		if !errors.Is(err, ErrOwnership) {
			t.Fatalf("half shard wired as full space: err = %v, want ErrOwnership", err)
		}
	})
	t.Run("topology hole", func(t *testing.T) {
		_, a1 := startServer(t, loadSplitPartial(t, res, 2, 0))
		_, a2 := startServer(t, loadSplitPartial(t, res, 2, 0))
		topo := &Topology{Generation: 1, Ranges: 2, Members: []string{a1, a2}}
		_, err := BuildFleet(topo, func(addr string) (tables.Backend, error) {
			return Dial(addr, &ClientOptions{Conns: 1})
		})
		if !errors.Is(err, ErrOwnership) {
			t.Fatalf("no member owns range 1: err = %v, want ErrOwnership", err)
		}
	})
}

// TestClientReconnectOwnershipChange: a shard address that comes back
// owning a different range must be refused at reconnect — the client
// pinned the range it validated at first handshake.
func TestClientReconnectOwnershipChange(t *testing.T) {
	res := fixtureTables(t)
	p0 := loadSplitPartial(t, res, 2, 0)
	p1 := loadSplitPartial(t, res, 2, 1)
	srv0, err := NewServer(p0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go srv0.Serve(l)
	cl := dialClient(t, addr, &ClientOptions{Conns: 1, Retry: fastRetry()})
	if lo, hi := cl.OwnedRange(); lo != 0 || hi != tables.RangeSpace/2 {
		t.Fatalf("pinned range [%#x, %#x)", lo, hi)
	}
	srv0.Close()

	// The same address comes back owning the OTHER half.
	srv1, err := NewServer(p1)
	if err != nil {
		t.Fatal(err)
	}
	var l2 net.Listener
	for i := 0; i < 50; i++ {
		if l2, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	go srv1.Serve(l2)
	t.Cleanup(func() { srv1.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Ping(ctx); !errors.Is(err, ErrOwnership) {
		t.Fatalf("reconnect across an ownership change: err = %v, want ErrOwnership", err)
	}
	if cl.OwnershipMismatches() == 0 {
		t.Fatal("ownership mismatch not counted")
	}
}

// countingBackend wraps a backend with a lookup counter and a settable
// drain flag — the in-process stand-in for a shard client whose server
// announced draining.
type countingBackend struct {
	tables.Backend
	draining atomic.Bool
	lookups  atomic.Int64
}

func (b *countingBackend) Draining() bool { return b.draining.Load() }

func (b *countingBackend) LookupBatch(ctx context.Context, keys []uint64, vals []uint16, found []bool) error {
	b.lookups.Add(1)
	return b.Backend.LookupBatch(ctx, keys, vals, found)
}

// TestDrainAwareRouting: once a replica announces draining, new
// sub-batches land on its siblings (and are counted as drain-rerouted);
// a fully-draining group still answers — draining beats dead.
func TestDrainAwareRouting(t *testing.T) {
	a := &countingBackend{Backend: fixtureBackend(t)}
	b := &countingBackend{Backend: fixtureBackend(t)}
	router, err := NewReplicatedRouter([][]tables.Backend{{a, b}}, RouterOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	rng := rand.New(rand.NewSource(6))
	keys := testBatch(t, rng, 8)
	vals := make([]uint16, len(keys))
	found := make([]bool, len(keys))
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := router.LookupBatch(ctx, keys, vals, found); err != nil {
			t.Fatal(err)
		}
	}
	if a.lookups.Load() == 0 || b.lookups.Load() == 0 {
		t.Fatalf("rotation never spread load: a=%d b=%d", a.lookups.Load(), b.lookups.Load())
	}

	a.draining.Store(true)
	beforeA := a.lookups.Load()
	baseRerouted := router.DrainRerouted()
	for i := 0; i < 8; i++ {
		if err := router.LookupBatch(ctx, keys, vals, found); err != nil {
			t.Fatalf("query during drain: %v", err)
		}
	}
	if got := a.lookups.Load(); got != beforeA {
		t.Fatalf("draining replica served %d new sub-batches", got-beforeA)
	}
	if router.DrainRerouted() <= baseRerouted {
		t.Fatal("drain reroutes not counted")
	}

	// Every replica draining: the drain must not turn into an outage.
	b.draining.Store(true)
	if err := router.LookupBatch(ctx, keys, vals, found); err != nil {
		t.Fatalf("fully-draining group refused a query: %v", err)
	}
}

// TestRollingRestartChaos is the tentpole proof: a 2x2 split-store
// fleet behind a SwapBackend, queried continuously by concurrent
// workers, has every shard replaced one at a time (start replacement →
// swap topology → drain old → close old) — with faultnet delay jitter
// on every shard link — and not one query fails or returns a
// non-identical answer.
func TestRollingRestartChaos(t *testing.T) {
	res := fixtureTables(t)
	local := fixtureBackend(t)
	const ranges, repl = 2, 2

	parts := make([]*tables.Partial, ranges)
	for g := range parts {
		parts[g] = loadSplitPartial(t, res, ranges, g)
	}
	type shard struct {
		srv  *Server
		addr string
		rng  int
	}
	seed := int64(1)
	startShard := func(g int) *shard {
		srv, err := NewServer(parts[g])
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		seed++
		inj := faultnet.New(faultnet.Options{Seed: seed, Delay: 0.05, MaxDelay: 2 * time.Millisecond})
		go srv.Serve(inj.Listener(l))
		t.Cleanup(func() { srv.Close() })
		return &shard{srv: srv, addr: l.Addr().String(), rng: g}
	}
	shards := make([]*shard, 0, ranges*repl)
	for g := 0; g < ranges; g++ {
		for r := 0; r < repl; r++ {
			shards = append(shards, startShard(g))
		}
	}
	buildRouter := func(gen uint64) *Router {
		members := make([]string, len(shards))
		for i, s := range shards {
			members[i] = s.addr
		}
		topo := &Topology{Generation: gen, Ranges: ranges, Replication: repl, Members: members}
		groups, err := BuildFleet(topo, func(addr string) (tables.Backend, error) {
			return Dial(addr, &ClientOptions{Conns: 2, Retry: fastRetry()})
		})
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewReplicatedRouter(groups, RouterOptions{ProbeInterval: -1, EjectBase: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	swap := NewSwapBackend(buildRouter(1), 1)
	t.Cleanup(func() { swap.Close() })

	// The oracle: every stored key with its value, plus the dense level
	// images. Everything the fleet answers is checked against these.
	var checkKeys []uint64
	lvWant := make([][]uint64, res.MaxCost+1)
	for c := 0; c <= res.MaxCost; c++ {
		lv := res.Level(c)
		lvWant[c] = make([]uint64, lv.Len())
		for j := 0; j < lv.Len(); j++ {
			k := uint64(lv.At(j))
			lvWant[c][j] = 0
			checkKeys = append(checkKeys, k)
		}
		if err := local.LevelKeys(context.Background(), c, 0, lvWant[c]); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 4
	stop := make(chan struct{})
	var queries atomic.Int64
	var progress [workers]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			keys := make([]uint64, 32)
			vals := make([]uint16, 32)
			found := make([]bool, 32)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for j := range keys {
					keys[j] = checkKeys[rng.Intn(len(checkKeys))]
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				err := swap.LookupBatch(ctx, keys, vals, found)
				cancel()
				queries.Add(1)
				if err != nil {
					t.Errorf("query dropped during roll: %v", err)
					return
				}
				for j, k := range keys {
					want, wantOK := res.LookupRaw(k)
					if found[j] != wantOK || vals[j] != want {
						t.Errorf("non-identical answer for %#x: (%#x, %v) want (%#x, %v)", k, vals[j], found[j], want, wantOK)
						return
					}
				}
				if rng.Intn(4) == 0 {
					c := rng.Intn(res.MaxCost + 1)
					out := make([]uint64, len(lvWant[c]))
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					err := swap.LevelKeys(ctx, c, 0, out)
					cancel()
					queries.Add(1)
					if err != nil {
						t.Errorf("level read dropped during roll: %v", err)
						return
					}
					for j := range out {
						if out[j] != lvWant[c][j] {
							t.Errorf("level %d diverged at %d during roll", c, j)
							return
						}
					}
				}
				progress[w].Add(1)
			}
		}(w, int64(100+w))
	}

	// awaitProgress blocks until every worker completes an iteration
	// begun after the call — i.e. until no query that predates the last
	// swap is still in flight on the superseded epoch.
	awaitProgress := func() {
		var snap [workers]int64
		for w := range snap {
			snap[w] = progress[w].Load()
		}
		deadline := time.Now().Add(30 * time.Second)
		for w := range snap {
			for progress[w].Load() < snap[w]+1 {
				if t.Failed() {
					return
				}
				if time.Now().After(deadline) {
					t.Fatal("workers made no progress after a swap")
				}
				time.Sleep(time.Millisecond)
			}
		}
	}

	// The roll: every shard, one at a time. The replacement joins the
	// topology first (swap), then the old shard drains and closes.
	gen := uint64(1)
	for slot := range shards {
		old := shards[slot]
		shards[slot] = startShard(old.rng)
		gen++
		r := buildRouter(gen)
		if err := swap.Swap(r, gen); err != nil {
			r.Close()
			t.Fatalf("swap to generation %d: %v", gen, err)
		}
		// Only drain the old shard once every query that might still be
		// running on the superseded topology has finished — the shard's
		// last sibling in that topology may already be gone.
		awaitProgress()
		if t.Failed() {
			break
		}
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := old.srv.Drain(dctx); err != nil {
			t.Errorf("drain of %s: %v", old.addr, err)
		}
		cancel()
		old.srv.Close()
		time.Sleep(30 * time.Millisecond) // sustained load between steps
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if swap.Generation() != gen {
		t.Fatalf("generation = %d, want %d", swap.Generation(), gen)
	}
	if n := queries.Load(); n < int64(len(shards)) {
		t.Fatalf("only %d queries ran across the roll", n)
	}
}

// TestSwapBackendCloseDuringSwapAndProber races queries, topology
// swaps, and Close against routers with live probers: queries must
// either succeed or fail ErrSwapClosed (nothing in between), a stale
// generation must be refused without closing the offered router, and
// nothing may leak a goroutine.
func TestSwapBackendCloseDuringSwapAndProber(t *testing.T) {
	local := fixtureBackend(t)
	before := runtime.NumGoroutine()

	mkServer := func() (*Server, string) {
		srv, err := NewServer(local)
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		return srv, l.Addr().String()
	}
	srvA, addrA := mkServer()
	srvB, addrB := mkServer()

	mkRouter := func() *Router {
		var reps []tables.Backend
		for _, addr := range []string{addrA, addrB} {
			cl, err := Dial(addr, &ClientOptions{Conns: 1, CacheKeys: -1, LevelCacheBytes: -1})
			if err != nil {
				t.Fatal(err)
			}
			reps = append(reps, cl)
		}
		r, err := NewReplicatedRouter([][]tables.Backend{reps}, RouterOptions{ProbeInterval: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	swap := NewSwapBackend(mkRouter(), 1)

	rng := rand.New(rand.NewSource(3))
	keys := testBatch(t, rng, 16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			vals := make([]uint16, len(keys))
			found := make([]bool, len(keys))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err := swap.LookupBatch(ctx, keys, vals, found)
				cancel()
				if err != nil {
					if !errors.Is(err, ErrSwapClosed) {
						t.Errorf("query failed mid-swap: %v", err)
					}
					return
				}
			}
		}()
	}
	for gen := uint64(2); gen <= 5; gen++ {
		r := mkRouter()
		if err := swap.Swap(r, gen); err != nil {
			r.Close()
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A stale generation is refused and the offered router stays the
	// caller's — alive and usable.
	stale := mkRouter()
	if err := swap.Swap(stale, 5); err == nil {
		t.Fatal("stale generation accepted")
	}
	vals := make([]uint16, len(keys))
	found := make([]bool, len(keys))
	if err := stale.LookupBatch(context.Background(), keys, vals, found); err != nil {
		t.Fatalf("refused router was damaged: %v", err)
	}
	stale.Close()

	if err := swap.Close(); err != nil {
		t.Fatal(err)
	}
	if err := swap.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := swap.LookupBatch(context.Background(), keys, vals, found); !errors.Is(err, ErrSwapClosed) {
		t.Fatalf("query after Close: err = %v, want ErrSwapClosed", err)
	}
	if err := swap.Swap(mkRouterAfterClose(t, swap), 99); !errors.Is(err, ErrSwapClosed) {
		t.Fatalf("swap after Close: err = %v, want ErrSwapClosed", err)
	}
	if g := swap.Generation(); g != 0 {
		t.Fatalf("generation after Close = %d", g)
	}
	srvA.Close()
	srvB.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: before %d, after %d\n%s", before, now, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// mkRouterAfterClose builds a throwaway in-process router for the
// swap-after-close probe and arranges its cleanup (the refused swap
// must not close it, so the test must).
func mkRouterAfterClose(t *testing.T, _ *SwapBackend) *Router {
	t.Helper()
	r, err := NewRouter([]tables.Backend{fixtureBackend(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// TestSwapRefusesForeignTableSet: a topology whose fleet serves a
// different table generation must be refused — cached results and
// in-flight queries assume one immutable table set.
func TestSwapRefusesForeignTableSet(t *testing.T) {
	swap := NewSwapBackend(mustRouter(t, fixtureBackend(t)), 1)
	t.Cleanup(func() { swap.Close() })
	other, err := bfs.Search(bfs.GateAlphabet(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	otherLocal, err := tables.NewLocal(other)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRouter(t, otherLocal)
	t.Cleanup(func() { r.Close() })
	if err := swap.Swap(r, 2); !errors.Is(err, ErrProtocol) {
		t.Fatalf("foreign table set swapped in: err = %v, want ErrProtocol", err)
	}
	if swap.Generation() != 1 {
		t.Fatalf("generation moved to %d on a refused swap", swap.Generation())
	}
}

func mustRouter(t *testing.T, b tables.Backend) *Router {
	t.Helper()
	r, err := NewRouter([]tables.Backend{b})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestStalledDrainingShardEjected: a shard that freezes mid-drain (the
// faultnet stall class: reads neither return nor error, deadlines
// useless) must not wedge the fleet — queries fail over, the breaker
// ejects it, and its Drain gives up at the caller's deadline instead
// of hanging forever.
func TestStalledDrainingShardEjected(t *testing.T) {
	local := fixtureBackend(t)
	srv0, err := NewServer(local)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultnet.New(faultnet.Options{Seed: 11})
	go srv0.Serve(inj.Listener(l0))
	addr0 := l0.Addr().String()
	t.Cleanup(func() { srv0.Close() })
	_, addr1 := startServer(t, local)

	// Caches off: every query must cross the wire, or the stalled shard
	// would keep "answering" out of the client's lookup cache.
	copts := func() *ClientOptions {
		return &ClientOptions{Conns: 1, CacheKeys: -1, LevelCacheBytes: -1, Retry: RetryPolicy{
			MaxAttempts:    2,
			BaseBackoff:    time.Millisecond,
			MaxBackoff:     5 * time.Millisecond,
			AttemptTimeout: 100 * time.Millisecond,
			Seed:           1,
		}}
	}
	c0, err := Dial(addr0, copts())
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Dial(addr1, copts())
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewReplicatedRouter([][]tables.Backend{{c0, c1}},
		RouterOptions{EjectAfter: 2, EjectBase: 500 * time.Millisecond, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })

	rng := rand.New(rand.NewSource(8))
	keys := testBatch(t, rng, 16)
	vals := make([]uint16, len(keys))
	found := make([]bool, len(keys))
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := router.LookupBatch(ctx, keys, vals, found)
		cancel()
		if err != nil {
			t.Fatalf("warmup query %d: %v", i, err)
		}
	}

	// Freeze every live connection into shard 0. The latch engages at
	// the next Read call, so cycle shard 0's handler through one more
	// request: it answers, loops, and freezes waiting for the next
	// opcode — a parked handler no deadline nudge can release.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := c0.LookupBatch(ctx, keys, vals, found); err != nil {
		t.Fatalf("pre-stall query on shard 0: %v", err)
	}
	cancel()
	inj.StallLive()
	ctx, cancel = context.WithTimeout(context.Background(), 5*time.Second)
	if err := c0.LookupBatch(ctx, keys, vals, found); err != nil {
		t.Fatalf("query cycling the stalled handler: %v", err)
	}
	cancel()

	// Now begin the drain: the frozen handler can never finish, so the
	// drain must wedge until its deadline — while the fleet keeps
	// answering.
	drainErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		drainErr <- srv0.Drain(ctx)
	}()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := router.LookupBatch(ctx, keys, vals, found)
		cancel()
		if err != nil {
			t.Fatalf("query %d during stalled drain: %v", i, err)
		}
	}
	if err := <-drainErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain of a stalled shard: err = %v, want deadline exceeded", err)
	}
	ejected := false
	for _, h := range router.HealthStats() {
		if h.Addr == addr0 && h.State == "ejected" {
			ejected = true
		}
	}
	if !ejected {
		t.Fatalf("stalled draining shard not ejected: %+v", router.HealthStats())
	}
	if inj.Counts().Stalls == 0 {
		t.Fatal("stall latch never engaged")
	}
	// Close is the only thing that releases frozen handlers; it must
	// return promptly rather than inheriting the wedge.
	done := make(chan struct{})
	go func() { srv0.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged behind stalled connections")
	}
}

// TestTopologyValidateAndAssign covers the topology document's guard
// rails and the rendezvous layout's two load-bearing properties:
// determinism and minimal disruption under membership change.
func TestTopologyValidateAndAssign(t *testing.T) {
	bad := []string{
		`{"generation":1,"ranges":0,"members":["a"]}`,
		`{"generation":1,"ranges":2}`,
		`{"generation":1,"ranges":2,"members":["a","a"]}`,
		`{"generation":1,"ranges":2,"members":["a",""]}`,
		`{"generation":1,"ranges":3,"groups":[["a"],["b"]]}`,
		`{"generation":1,"groups":[["a"],[]]}`,
		`not json`,
	}
	for _, doc := range bad {
		if _, err := ParseTopology([]byte(doc)); err == nil {
			t.Fatalf("accepted invalid topology %s", doc)
		}
	}
	topo, err := ParseTopology([]byte(`{"generation":7,"ranges":4,"replication":2,"members":["m1","m2","m3","m4","m5"]}`))
	if err != nil {
		t.Fatal(err)
	}
	full := func(string) (uint64, uint64) { return 0, tables.RangeSpace }
	a1, err := topo.Assign(full)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := topo.Assign(full)
	if err != nil {
		t.Fatal(err)
	}
	for g := range a1 {
		if len(a1[g]) != 2 {
			t.Fatalf("range %d assigned %d replicas", g, len(a1[g]))
		}
		for i := range a1[g] {
			if a1[g][i] != a2[g][i] {
				t.Fatal("assignment is not deterministic")
			}
		}
	}
	// Remove one member: only ranges that had it may change.
	removed := "m3"
	var kept []string
	for _, m := range topo.Members {
		if m != removed {
			kept = append(kept, m)
		}
	}
	shrunk := &Topology{Generation: 8, Ranges: topo.Ranges, Replication: 2, Members: kept}
	a3, err := shrunk.Assign(full)
	if err != nil {
		t.Fatal(err)
	}
	for g := range a1 {
		had := false
		for _, m := range a1[g] {
			if m == removed {
				had = true
			}
		}
		if had {
			continue
		}
		for i := range a1[g] {
			if a1[g][i] != a3[g][i] {
				t.Fatalf("range %d reshuffled though %s was not in it: %v -> %v", g, removed, a1[g], a3[g])
			}
		}
	}
	// Pinned groups override everything.
	pinned, err := ParseTopology([]byte(`{"generation":9,"groups":[["x"],["y","z"]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if pinned.NumRanges() != 2 {
		t.Fatalf("pinned ranges = %d", pinned.NumRanges())
	}
	ap, err := pinned.Assign(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(ap) != 2 || ap[0][0] != "x" || len(ap[1]) != 2 {
		t.Fatalf("pinned layout mangled: %v", ap)
	}
}
