package tablenet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hashtab"
	"repro/internal/tables"
)

// Router composes N shard backends into one tables.Backend by
// partitioning the canonical-representative key space on the high bits
// of the Wang hash — the same bits the in-process sharded hash table
// routes by, so the partition is uniform for exactly the same reason the
// shard locks were. Each LookupBatch is split by key owner and fanned
// out to the owning shards concurrently, then scattered back in place;
// a batch therefore costs one round trip regardless of shard count.
//
// Every shard serves the same store (the v2 table file is cheap to
// replicate; it is the HOT set that doesn't fit one host), so the
// routing's effect is page-cache partitioning: shard i only ever probes
// its hash range, and its mmap'd resident set converges to ~1/N of the
// table. Level-range reads are not keyed, so they round-robin across
// shards with failover — any replica can serve them.
type Router struct {
	shards []tables.Backend
	meta   tables.Meta
	rr     atomic.Uint64
}

// ShardOf returns the owning shard of a table key among n shards: a
// range partition of the high 32 Wang-hash bits, so any shard count
// (not just powers of two) splits the space evenly.
func ShardOf(key uint64, n int) int {
	h := hashtab.Hash64Shift(key)
	return int(uint64(uint32(h>>32)) * uint64(n) >> 32)
}

// NewRouter builds a router over the given shard backends, which must
// all serve the same logical table set (same horizon, reduction,
// entries, level counts, and alphabet fingerprint) — a mixed-generation
// shard fleet would answer queries inconsistently, so it is rejected
// here, at wiring time.
func NewRouter(shards []tables.Backend) (*Router, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("tablenet: router needs at least one shard")
	}
	meta := shards[0].Meta()
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	for i, sh := range shards[1:] {
		if !meta.Compatible(sh.Meta()) {
			return nil, fmt.Errorf("tablenet: shard %d serves a different table set than shard 0", i+1)
		}
	}
	m := meta
	m.LevelCounts = append([]int(nil), meta.LevelCounts...)
	m.Source = fmt.Sprintf("router(%d)", len(shards))
	return &Router{shards: shards, meta: m}, nil
}

// Meta returns the (shared) table metadata.
func (r *Router) Meta() tables.Meta { return r.meta }

// lookupScratch is pooled per-call partition workspace.
type lookupScratch struct {
	idx  [][]int // per-shard indices into the caller's batch
	keys []uint64
	vals []uint16
	ok   []bool
}

var lookupPool = sync.Pool{New: func() any { return new(lookupScratch) }}

// LookupBatch partitions the batch by key owner and resolves every
// sub-batch concurrently. Results land exactly where a single backend
// would have put them, so callers cannot tell a router from a table.
func (r *Router) LookupBatch(ctx context.Context, keys []uint64, vals []uint16, found []bool) error {
	if len(vals) != len(keys) || len(found) != len(keys) {
		return fmt.Errorf("tablenet: LookupBatch slice lengths differ (%d/%d/%d)", len(keys), len(vals), len(found))
	}
	n := len(r.shards)
	if n == 1 {
		return r.shards[0].LookupBatch(ctx, keys, vals, found)
	}
	sc := lookupPool.Get().(*lookupScratch)
	defer lookupPool.Put(sc)
	if len(sc.idx) < n {
		sc.idx = make([][]int, n)
	}
	idx := sc.idx[:n]
	for s := range idx {
		idx[s] = idx[s][:0]
	}
	for i, k := range keys {
		s := ShardOf(k, n)
		idx[s] = append(idx[s], i)
	}
	if cap(sc.keys) < len(keys) {
		sc.keys = make([]uint64, len(keys))
		sc.vals = make([]uint16, len(keys))
		sc.ok = make([]bool, len(keys))
	}
	// Slice the shared scratch into disjoint per-shard windows laid out
	// in shard order, so the concurrent sub-lookups never overlap.
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	off := 0
	for s := 0; s < n; s++ {
		ids := idx[s]
		if len(ids) == 0 {
			continue
		}
		subKeys := sc.keys[off : off+len(ids)]
		subVals := sc.vals[off : off+len(ids)]
		subOK := sc.ok[off : off+len(ids)]
		off += len(ids)
		for j, i := range ids {
			subKeys[j] = keys[i]
		}
		wg.Add(1)
		go func(sh tables.Backend, ids []int, subKeys []uint64, subVals []uint16, subOK []bool) {
			defer wg.Done()
			if err := sh.LookupBatch(ctx, subKeys, subVals, subOK); err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			for j, i := range ids {
				vals[i] = subVals[j]
				found[i] = subOK[j]
			}
		}(r.shards[s], ids, subKeys, subVals, subOK)
	}
	wg.Wait()
	return firstErr
}

// LevelKeys forwards a level-range read to one shard, round-robin, with
// failover: the request is not keyed (every shard holds the full level
// index), so any reachable replica can answer it. A request fails only
// when every shard does.
func (r *Router) LevelKeys(ctx context.Context, c, lo int, out []uint64) error {
	n := len(r.shards)
	start := int(r.rr.Add(1)-1) % n
	var errs []error
	for step := 0; step < n; step++ {
		sh := r.shards[(start+step)%n]
		err := sh.LevelKeys(ctx, c, lo, out)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return err
		}
		errs = append(errs, err)
	}
	return fmt.Errorf("tablenet: all %d shards failed level read: %w", n, errors.Join(errs...))
}

// ShardStatus is one shard's health probe outcome.
type ShardStatus struct {
	// Addr names the shard (its dial address, or "local[i]" for
	// in-process backends).
	Addr string
	// Err is nil for a reachable shard.
	Err error
}

// Check probes every shard for reachability (Ping for network shards;
// in-process backends are trivially healthy). A router whose shards are
// partly unreachable still answers lookups for the healthy partitions
// and fails the rest, so /healthz uses Check to report "degraded" and
// let the load balancer eject the instance.
func (r *Router) Check(ctx context.Context) []ShardStatus {
	out := make([]ShardStatus, len(r.shards))
	var wg sync.WaitGroup
	for i, sh := range r.shards {
		out[i].Addr = fmt.Sprintf("local[%d]", i)
		if a, ok := sh.(interface{ Addr() string }); ok {
			out[i].Addr = a.Addr()
		}
		p, ok := sh.(interface{ Ping(context.Context) error })
		if !ok {
			continue
		}
		wg.Add(1)
		go func(i int, ping func(context.Context) error) {
			defer wg.Done()
			out[i].Err = ping(ctx)
		}(i, p.Ping)
	}
	wg.Wait()
	return out
}

// CacheStats aggregates the tiered-cache and wire counters of every
// shard backend that maintains them (network clients do; in-process
// backends contribute nothing) — one snapshot for the whole client
// pool, the number a router daemon's /stats reports.
func (r *Router) CacheStats() tables.CacheStats {
	var st tables.CacheStats
	for _, sh := range r.shards {
		if cs, ok := sh.(tables.CacheStatser); ok {
			st.Add(cs.CacheStats())
		}
	}
	return st
}

// Shards returns the number of shard backends.
func (r *Router) Shards() int { return len(r.shards) }

// Close closes every shard backend.
func (r *Router) Close() error {
	var errs []error
	for _, sh := range r.shards {
		if err := sh.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
