package tablenet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hashtab"
	"repro/internal/tables"
)

// Router composes a fleet of shard backends into one tables.Backend by
// partitioning the canonical-representative key space on the high bits
// of the Wang hash — the same bits the in-process sharded hash table
// routes by, so the partition is uniform for exactly the same reason the
// shard locks were. Each LookupBatch is split by key owner and fanned
// out to the owning ranges concurrently, then scattered back in place;
// a batch therefore costs one round trip regardless of range count.
//
// Every shard serves the same store (the v2 table file is cheap to
// replicate; it is the HOT set that doesn't fit one host), so the
// routing's effect is page-cache partitioning: a range's replicas only
// ever probe their hash range, and their mmap'd resident sets converge
// to ~1/N of the table. Level-range reads are not keyed, so they
// round-robin across all replicas with failover — any replica can serve
// them.
//
// Each hash range may be served by several replicas. Because every
// request is an idempotent read of an immutable table generation, a
// sub-batch that fails on one replica with a transport-class error
// (see retryable) fails over to a sibling replica instead of failing
// the query. A per-replica health tracker (healthTracker) orders the
// failover healthy-first and ejects replicas that fail repeatedly, so
// steady-state traffic does not keep paying a dead replica's timeout;
// a background prober re-admits replicas as they recover.
type Router struct {
	groups [][]tables.Backend
	health [][]*healthTracker
	addrs  [][]string
	meta   tables.Meta
	opts   RouterOptions
	// split records that at least one replica owns less than the full
	// hash space: level iteration must then fan out sparse per-range
	// reads and merge them by global position instead of asking any one
	// replica for the dense range.
	split bool

	rr            atomic.Uint64   // level-read rotation over all replicas
	grpRR         []atomic.Uint64 // per-range replica rotation for lookups
	drainRerouted atomic.Uint64   // sub-batches steered away from draining replicas

	stop     chan struct{}
	stopOnce sync.Once
	probeWG  sync.WaitGroup
}

// RouterOptions tunes the router's health tracking. The zero value
// picks the defaults.
type RouterOptions struct {
	// EjectAfter is the consecutive-failure count that ejects a replica
	// (default DefaultEjectAfter).
	EjectAfter int
	// EjectBase is the first ejection window; each consecutive ejection
	// doubles it up to EjectMax (defaults DefaultEjectBase /
	// DefaultEjectMax).
	EjectBase time.Duration
	EjectMax  time.Duration
	// ProbeInterval is the background re-admission prober's period; it
	// pings non-healthy network replicas so recovery is noticed without
	// spending query traffic on trials. 0 means DefaultProbeInterval;
	// negative disables the prober (recovery then rides on half-open
	// trial requests alone — the mode unit tests use).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each background probe and each Check probe
	// (default DefaultProbeTimeout).
	ProbeTimeout time.Duration
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.EjectAfter <= 0 {
		o.EjectAfter = DefaultEjectAfter
	}
	if o.EjectBase <= 0 {
		o.EjectBase = DefaultEjectBase
	}
	if o.EjectMax <= 0 {
		o.EjectMax = DefaultEjectMax
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = DefaultProbeTimeout
	}
	return o
}

// ShardOf returns the owning hash range of a table key among n ranges:
// a range partition of the high 32 Wang-hash bits, so any range count
// (not just powers of two) splits the space evenly.
func ShardOf(key uint64, n int) int {
	h := hashtab.Hash64Shift(key)
	return int(uint64(uint32(h>>32)) * uint64(n) >> 32)
}

// NewRouter builds a router with one replica per hash range — the
// unreplicated fleet shape earlier revisions exposed directly.
func NewRouter(shards []tables.Backend) (*Router, error) {
	groups := make([][]tables.Backend, len(shards))
	for i, sh := range shards {
		groups[i] = []tables.Backend{sh}
	}
	return NewReplicatedRouter(groups, RouterOptions{})
}

// NewReplicatedRouter builds a router over groups[range][replica]. All
// backends must serve the same logical table set (same horizon,
// reduction, entries, level counts, and alphabet fingerprint) — a
// mixed-generation fleet would answer queries inconsistently, so it is
// rejected here, at wiring time. A replica that reports an owned key
// range (tables.RangeOwner — split stores and their network clients do)
// must cover the hash range it is wired into, or the wiring is refused
// with ErrOwnership: a split file mounted at the wrong fleet position
// would otherwise answer not-found for keys the fleet holds.
func NewReplicatedRouter(groups [][]tables.Backend, opts RouterOptions) (*Router, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("tablenet: router needs at least one hash range")
	}
	for g, reps := range groups {
		if len(reps) == 0 {
			return nil, fmt.Errorf("tablenet: hash range %d has no replicas", g)
		}
	}
	opts = opts.withDefaults()
	meta := groups[0][0].Meta()
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	r := &Router{
		groups: groups,
		health: make([][]*healthTracker, len(groups)),
		addrs:  make([][]string, len(groups)),
		opts:   opts,
		grpRR:  make([]atomic.Uint64, len(groups)),
		stop:   make(chan struct{}),
	}
	flat := 0
	for g, reps := range groups {
		r.health[g] = make([]*healthTracker, len(reps))
		r.addrs[g] = make([]string, len(reps))
		wiredLo, wiredHi := tables.RangeOf(g, len(groups))
		for i, b := range reps {
			if g+i > 0 && !meta.Compatible(b.Meta()) {
				return nil, fmt.Errorf("tablenet: range %d replica %d serves a different table set than range 0 replica 0", g, i)
			}
			r.health[g][i] = newHealthTracker(opts.EjectAfter, opts.EjectBase, opts.EjectMax)
			r.addrs[g][i] = backendAddr(b, flat)
			if ro, ok := b.(tables.RangeOwner); ok {
				olo, ohi := ro.OwnedRange()
				if olo > wiredLo || ohi < wiredHi {
					return nil, fmt.Errorf("%w: range %d replica %s owns [%#x, %#x), wired for [%#x, %#x)", ErrOwnership, g, r.addrs[g][i], olo, ohi, wiredLo, wiredHi)
				}
				if olo != 0 || ohi != tables.RangeSpace {
					r.split = true
				}
			}
			flat++
		}
	}
	m := meta
	m.LevelCounts = append([]int(nil), meta.LevelCounts...)
	m.Source = fmt.Sprintf("router(%d)", len(groups))
	if flat > len(groups) {
		m.Source = fmt.Sprintf("router(%d x%d)", len(groups), flat)
	}
	r.meta = m
	if opts.ProbeInterval > 0 && flat > len(groups) {
		r.probeWG.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// backendAddr names a backend for statuses and errors.
func backendAddr(b tables.Backend, i int) string {
	if a, ok := b.(interface{ Addr() string }); ok {
		return a.Addr()
	}
	return fmt.Sprintf("local[%d]", i)
}

// Meta returns the (shared) table metadata.
func (r *Router) Meta() tables.Meta { return r.meta }

// lookupScratch is pooled per-call partition workspace.
type lookupScratch struct {
	idx  [][]int // per-range indices into the caller's batch
	keys []uint64
	vals []uint16
	ok   []bool
}

var lookupPool = sync.Pool{New: func() any { return new(lookupScratch) }}

// LookupBatch partitions the batch by key owner and resolves every
// sub-batch concurrently against its range's replicas. Results land
// exactly where a single backend would have put them, so callers cannot
// tell a router from a table. The first sub-batch to fail terminally
// cancels its siblings — once the batch's outcome is decided, the
// remaining sub-lookups are wasted wire traffic.
func (r *Router) LookupBatch(ctx context.Context, keys []uint64, vals []uint16, found []bool) error {
	if len(vals) != len(keys) || len(found) != len(keys) {
		return fmt.Errorf("tablenet: LookupBatch slice lengths differ (%d/%d/%d)", len(keys), len(vals), len(found))
	}
	n := len(r.groups)
	if n == 1 && len(r.groups[0]) == 1 {
		return r.groups[0][0].LookupBatch(ctx, keys, vals, found)
	}
	sc := lookupPool.Get().(*lookupScratch)
	defer lookupPool.Put(sc)
	if len(sc.idx) < n {
		sc.idx = make([][]int, n)
	}
	idx := sc.idx[:n]
	for g := range idx {
		idx[g] = idx[g][:0]
	}
	for i, k := range keys {
		g := ShardOf(k, n)
		idx[g] = append(idx[g], i)
	}
	if cap(sc.keys) < len(keys) {
		sc.keys = make([]uint64, len(keys))
		sc.vals = make([]uint16, len(keys))
		sc.ok = make([]bool, len(keys))
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Slice the shared scratch into disjoint per-range windows laid out
	// in range order, so the concurrent sub-lookups never overlap.
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	off := 0
	for g := 0; g < n; g++ {
		ids := idx[g]
		if len(ids) == 0 {
			continue
		}
		subKeys := sc.keys[off : off+len(ids)]
		subVals := sc.vals[off : off+len(ids)]
		subOK := sc.ok[off : off+len(ids)]
		off += len(ids)
		for j, i := range ids {
			subKeys[j] = keys[i]
		}
		wg.Add(1)
		go func(g int, ids []int, subKeys []uint64, subVals []uint16, subOK []bool) {
			defer wg.Done()
			if err := r.groupLookup(ctx, g, subKeys, subVals, subOK); err != nil {
				errOnce.Do(func() {
					firstErr = err
					cancel()
				})
				return
			}
			for j, i := range ids {
				vals[i] = subVals[j]
				found[i] = subOK[j]
			}
		}(g, ids, subKeys, subVals, subOK)
	}
	wg.Wait()
	return firstErr
}

// groupLookup resolves one range's sub-batch, failing over across the
// range's replicas on transport-class errors. Replica order is
// healthy-first (rotated per range so load spreads), then half-open
// trials, then ejected replicas as a last resort — a batch prefers a
// known-good replica but never fails while any replica can answer.
func (r *Router) groupLookup(ctx context.Context, g int, keys []uint64, vals []uint16, found []bool) error {
	reps := r.groups[g]
	if len(reps) == 1 {
		return r.tryReplica(ctx, g, 0, keys, vals, found)
	}
	order, trials := r.replicaOrder(g)
	var errs []error
	for _, i := range order {
		if cerr := ctx.Err(); cerr != nil {
			r.releaseTrials(g, trials)
			return cerr
		}
		delete(trials, i)
		err := r.tryReplica(ctx, g, i, keys, vals, found)
		if err == nil {
			r.releaseTrials(g, trials)
			return nil
		}
		if ctx.Err() != nil || !retryable(err) {
			r.releaseTrials(g, trials)
			return err
		}
		errs = append(errs, err)
	}
	return fmt.Errorf("tablenet: range %d: all %d replicas failed: %w", g, len(reps), errors.Join(errs...))
}

// tryReplica runs one replica attempt and feeds its outcome to the
// health tracker. Outcomes under a dead ctx are not attributed to the
// replica — a cancelled batch says nothing about replica health.
func (r *Router) tryReplica(ctx context.Context, g, i int, keys []uint64, vals []uint16, found []bool) error {
	err := r.groups[g][i].LookupBatch(ctx, keys, vals, found)
	if ctx.Err() == nil {
		r.health[g][i].observe(err == nil || !retryable(err), time.Now())
	}
	if err != nil {
		return fmt.Errorf("%s: %w", r.addrs[g][i], err)
	}
	return nil
}

// drainReporter is implemented by backends that track their shard's
// announced drain state (network clients do).
type drainReporter interface{ Draining() bool }

func isDraining(b tables.Backend) bool {
	d, ok := b.(drainReporter)
	return ok && d.Draining()
}

// replicaOrder returns range g's replicas in failover order: healthy
// non-draining first (rotated), then admitted half-open trials, then
// draining replicas (they still answer — in-flight work finishes during
// a drain — but new sub-batches should land on siblings), then ejected
// replicas as a last resort. trials holds the indices this caller was
// admitted for — any it does not actually attempt must be released.
func (r *Router) replicaOrder(g int) (order []int, trials map[int]struct{}) {
	reps := r.groups[g]
	n := len(reps)
	start := int(r.grpRR[g].Add(1)-1) % n
	now := time.Now()
	order = make([]int, 0, n)
	var trialL, drainL, rest []int
	for s := 0; s < n; s++ {
		i := (start + s) % n
		ok, trial := r.health[g][i].allow(now)
		switch {
		case ok && trial:
			if trials == nil {
				trials = make(map[int]struct{})
			}
			trials[i] = struct{}{}
			trialL = append(trialL, i)
		case ok && isDraining(reps[i]):
			drainL = append(drainL, i)
		case ok:
			order = append(order, i)
		default:
			rest = append(rest, i)
		}
	}
	if len(drainL) > 0 && len(order) > 0 {
		// A draining replica was demoted behind a live sibling: this
		// sub-batch was rerouted by the drain, not by a fault.
		r.drainRerouted.Add(1)
	}
	order = append(order, trialL...)
	order = append(order, drainL...)
	return append(order, rest...), trials
}

// releaseTrials reopens half-open trial slots this caller claimed but
// never used.
func (r *Router) releaseTrials(g int, trials map[int]struct{}) {
	for i := range trials {
		r.health[g][i].release()
	}
}

// LevelKeys serves a level-range read. In a fleet of full-store
// replicas the request is not keyed (every replica holds the full level
// index), so it forwards to one replica, round-robin over the whole
// fleet, with failover. In a split fleet no single replica holds the
// dense range: the read fans out one sparse request per hash range —
// each filtered to that range's interval, so even a full-store replica
// wired into the topology contributes exactly its range's slice — and
// the (global position, key) pairs merge back in place, with a coverage
// check that every slot was filled exactly once.
//
// The rotation is health- and drain-aware — ejected and draining
// replicas sort last, so steady-state level reads never pay a dead
// replica's retry cycle — and half-open trials admit one probe read when
// an ejection window expires. A request fails only when every replica
// does, and the error then names each failing replica.
func (r *Router) LevelKeys(ctx context.Context, c, lo int, out []uint64) error {
	if r.split {
		return r.levelKeysSparse(ctx, c, lo, out)
	}
	type ref struct{ g, i int }
	var flat []ref
	for g, reps := range r.groups {
		for i := range reps {
			flat = append(flat, ref{g, i})
		}
	}
	n := len(flat)
	start := int(r.rr.Add(1)-1) % n
	now := time.Now()
	order := make([]ref, 0, n)
	var trialL, drainL, rest []ref
	trials := make(map[ref]struct{})
	for step := 0; step < n; step++ {
		f := flat[(start+step)%n]
		ok, trial := r.health[f.g][f.i].allow(now)
		switch {
		case ok && trial:
			trials[f] = struct{}{}
			trialL = append(trialL, f)
		case ok && isDraining(r.groups[f.g][f.i]):
			drainL = append(drainL, f)
		case ok:
			order = append(order, f)
		default:
			rest = append(rest, f)
		}
	}
	order = append(order, trialL...)
	order = append(order, drainL...)
	releaseTrials := func() {
		for f := range trials {
			r.health[f.g][f.i].release()
		}
	}
	var errs []error
	for _, f := range append(order, rest...) {
		if cerr := ctx.Err(); cerr != nil {
			releaseTrials()
			return cerr
		}
		delete(trials, f)
		err := r.groups[f.g][f.i].LevelKeys(ctx, c, lo, out)
		if ctx.Err() == nil {
			r.health[f.g][f.i].observe(err == nil || !retryable(err), time.Now())
		}
		if err == nil {
			releaseTrials()
			return nil
		}
		if ctx.Err() != nil || !retryable(err) {
			releaseTrials()
			return err
		}
		errs = append(errs, fmt.Errorf("%s: %w", r.addrs[f.g][f.i], err))
	}
	return fmt.Errorf("tablenet: all %d replicas failed level read: %w", n, errors.Join(errs...))
}

// levelKeysSparse is the split-fleet level read: one sparse request per
// hash range, concurrently, each filtered to the range's own interval;
// the returned (global position, key) pairs scatter into out. Ranges
// partition the level by key hash, so the position sets are disjoint —
// the concurrent scatters never touch the same slot — and their union
// must be exactly the requested window, which the fill count verifies.
func (r *Router) levelKeysSparse(ctx context.Context, c, lo int, out []uint64) error {
	if c < 0 || c > r.meta.K {
		return fmt.Errorf("tablenet: level %d outside horizon %d", c, r.meta.K)
	}
	count := r.meta.LevelCounts[c]
	if lo < 0 || lo+len(out) > count {
		return fmt.Errorf("tablenet: level %d range [%d, %d) outside [0, %d)", c, lo, lo+len(out), count)
	}
	L := len(out)
	if L == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	filled := make([]bool, L)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	var total atomic.Int64
	for g := range r.groups {
		glo, ghi := tables.RangeOf(g, len(r.groups))
		wg.Add(1)
		go func(g int, glo, ghi uint64) {
			defer wg.Done()
			pos := make([]uint32, L)
			keys := make([]uint64, L)
			cnt, err := r.groupSparseLevel(ctx, g, c, lo, L, glo, ghi, pos, keys)
			if err != nil {
				errOnce.Do(func() {
					firstErr = err
					cancel()
				})
				return
			}
			for j := 0; j < cnt; j++ {
				p := int(pos[j])
				if p >= L || filled[p] {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("%w: range %d returned level position %d outside or colliding in window %d", ErrProtocol, g, p, L)
						cancel()
					})
					return
				}
				out[p] = keys[j]
				filled[p] = true
			}
			total.Add(int64(cnt))
		}(g, glo, ghi)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if got := int(total.Load()); got != L {
		return fmt.Errorf("%w: split level read covered %d of %d positions", ErrProtocol, got, L)
	}
	return nil
}

// groupSparseLevel resolves one range's sparse level read with the same
// replica failover discipline as groupLookup.
func (r *Router) groupSparseLevel(ctx context.Context, g, c, lo, n int, filterLo, filterHi uint64, pos []uint32, keys []uint64) (int, error) {
	order, trials := r.replicaOrder(g)
	var errs []error
	for _, i := range order {
		if cerr := ctx.Err(); cerr != nil {
			r.releaseTrials(g, trials)
			return 0, cerr
		}
		delete(trials, i)
		cnt, err := tables.SparseLevelKeys(ctx, r.groups[g][i], c, lo, n, filterLo, filterHi, pos, keys)
		if ctx.Err() == nil {
			r.health[g][i].observe(err == nil || !retryable(err), time.Now())
		}
		if err == nil {
			r.releaseTrials(g, trials)
			return cnt, nil
		}
		if ctx.Err() != nil || !retryable(err) {
			r.releaseTrials(g, trials)
			return 0, err
		}
		errs = append(errs, fmt.Errorf("%s: %w", r.addrs[g][i], err))
	}
	return 0, fmt.Errorf("tablenet: range %d: all %d replicas failed sparse level read: %w", g, len(r.groups[g]), errors.Join(errs...))
}

// DrainRerouted counts sub-batches (lookup or level) that were steered
// away from a draining replica to a live sibling.
func (r *Router) DrainRerouted() uint64 { return r.drainRerouted.Load() }

// OwnershipMismatches sums, over every replica client, the reconnects
// refused because a shard's advertised key range no longer matched the
// range pinned at first handshake.
func (r *Router) OwnershipMismatches() uint64 {
	var n uint64
	for _, reps := range r.groups {
		for _, b := range reps {
			if om, ok := b.(interface{ OwnershipMismatches() uint64 }); ok {
				n += om.OwnershipMismatches()
			}
		}
	}
	return n
}

// ShardResidency is one replica's mapped-store page residency — the
// mincore stats its server reports — labeled for metrics export.
type ShardResidency struct {
	Addr          string
	Range         int
	ResidentBytes uint64
	MappedBytes   uint64
}

// Residency collects each replica's store residency: one ServerStats
// probe per network replica (bounded by ProbeTimeout, concurrently), a
// direct read for in-process backends. Replicas that cannot report — no
// mapped store, or unreachable right now — are omitted rather than
// reported as zero, so a scrape distinguishes "cold" from "unknown".
func (r *Router) Residency(ctx context.Context) []ShardResidency {
	type statser interface {
		ServerStats(context.Context) (Stats, error)
	}
	var mu sync.Mutex
	var out []ShardResidency
	var wg sync.WaitGroup
	for g, reps := range r.groups {
		for i, b := range reps {
			ss, ok := b.(statser)
			if !ok {
				if rr, ok := b.(tables.ResidencyReporter); ok {
					if res, mapped, ok := rr.Residency(); ok {
						out = append(out, ShardResidency{Addr: r.addrs[g][i], Range: g,
							ResidentBytes: uint64(res), MappedBytes: uint64(mapped)})
					}
				}
				continue
			}
			wg.Add(1)
			go func(addr string, g int, ss statser) {
				defer wg.Done()
				sctx, cancel := context.WithTimeout(ctx, r.opts.ProbeTimeout)
				defer cancel()
				st, err := ss.ServerStats(sctx)
				if err != nil || st.MappedBytes == 0 {
					return
				}
				mu.Lock()
				out = append(out, ShardResidency{Addr: addr, Range: g,
					ResidentBytes: st.ResidentBytes, MappedBytes: st.MappedBytes})
				mu.Unlock()
			}(r.addrs[g][i], g, ss)
		}
	}
	wg.Wait()
	return out
}

// pinger is the probe interface network clients implement; in-process
// backends are trivially reachable and are not probed.
type pinger interface {
	Ping(context.Context) error
}

// probeLoop is the background re-admission prober: it pings every
// non-healthy network replica each interval and feeds the outcome to
// the health tracker, so a recovered replica rejoins within about one
// probe interval without a query paying for the discovery, and a
// still-dark replica keeps extending its ejection window instead of
// re-entering rotation.
func (r *Router) probeLoop() {
	defer r.probeWG.Done()
	t := time.NewTicker(r.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeOnce()
		}
	}
}

// probeOnce pings every currently non-healthy network replica.
func (r *Router) probeOnce() {
	for g, reps := range r.groups {
		for i, b := range reps {
			h := r.health[g][i]
			if h.state.Load() == stateHealthy {
				continue
			}
			p, ok := b.(pinger)
			if !ok {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), r.opts.ProbeTimeout)
			err := p.Ping(ctx)
			cancel()
			h.observe(err == nil, time.Now())
		}
	}
}

// ShardStatus is one replica's health probe outcome.
type ShardStatus struct {
	// Addr names the replica (its dial address, or "local[i]" for
	// in-process backends).
	Addr string
	// Range is the hash-range index the replica serves.
	Range int
	// State is the health tracker's view: "healthy", "ejected", or
	// "half-open".
	State string
	// Draining reports the shard's announced drain state: still
	// answering, but routing steers new work to siblings.
	Draining bool
	// Err is nil for a reachable replica.
	Err error
}

// Check probes every replica for reachability (Ping for network
// replicas, each bounded by ProbeTimeout; in-process backends are
// trivially healthy) and annotates each with its tracker state.
// Statuses are in range-major replica order.
func (r *Router) Check(ctx context.Context) []ShardStatus {
	out := make([]ShardStatus, 0, r.Shards())
	var wg sync.WaitGroup
	for g, reps := range r.groups {
		for i, b := range reps {
			out = append(out, ShardStatus{
				Addr:     r.addrs[g][i],
				Range:    g,
				State:    r.health[g][i].stateName(),
				Draining: isDraining(b),
			})
			p, ok := b.(pinger)
			if !ok {
				continue
			}
			wg.Add(1)
			go func(st *ShardStatus, ping func(context.Context) error) {
				defer wg.Done()
				pctx, cancel := context.WithTimeout(ctx, r.opts.ProbeTimeout)
				defer cancel()
				st.Err = ping(pctx)
			}(&out[len(out)-1], p.Ping)
		}
	}
	wg.Wait()
	return out
}

// FleetHealth is the router's availability summary, the /healthz
// contract: Degraded means some replica is unreachable but every hash
// range still has at least one live replica (the fleet answers every
// query, with reduced headroom); DownRanges lists ranges with no
// reachable replica at all (keyed lookups over those ranges fail).
type FleetHealth struct {
	Replicas   []ShardStatus
	Degraded   bool
	DownRanges []int
}

// Down reports whether any hash range is completely unreachable.
func (f FleetHealth) Down() bool { return len(f.DownRanges) > 0 }

// Health probes the fleet (Check) and folds the statuses into the
// degraded-vs-down summary.
func (r *Router) Health(ctx context.Context) FleetHealth {
	f := FleetHealth{Replicas: r.Check(ctx)}
	perRange := make([]int, len(r.groups)) // reachable replicas per range
	for _, st := range f.Replicas {
		if st.Err != nil {
			f.Degraded = true
		} else {
			perRange[st.Range]++
		}
	}
	for g, live := range perRange {
		if live == 0 {
			f.DownRanges = append(f.DownRanges, g)
		}
	}
	return f
}

// HealthStats snapshots every replica's tracker — the traffic-driven
// view (no probe I/O), the one /stats embeds.
func (r *Router) HealthStats() []tables.Health {
	var out []tables.Health
	for g, reps := range r.groups {
		for i := range reps {
			h := r.health[g][i]
			out = append(out, tables.Health{
				Addr:                r.addrs[g][i],
				Range:               g,
				State:               h.stateName(),
				ConsecutiveFailures: h.consec.Load(),
				Ejections:           h.ejections.Load(),
			})
		}
	}
	return out
}

// CacheStats aggregates the tiered-cache and wire counters of every
// replica backend that maintains them (network clients do; in-process
// backends contribute nothing) — one snapshot for the whole client
// pool, the number a router daemon's /stats reports.
func (r *Router) CacheStats() tables.CacheStats {
	var st tables.CacheStats
	for _, reps := range r.groups {
		for _, b := range reps {
			if cs, ok := b.(tables.CacheStatser); ok {
				st.Add(cs.CacheStats())
			}
		}
	}
	return st
}

// Shards returns the total replica count across all hash ranges.
func (r *Router) Shards() int {
	n := 0
	for _, reps := range r.groups {
		n += len(reps)
	}
	return n
}

// Ranges returns the number of hash ranges.
func (r *Router) Ranges() int { return len(r.groups) }

// Close stops the prober and closes every replica backend.
func (r *Router) Close() error {
	r.stopOnce.Do(func() { close(r.stop) })
	r.probeWG.Wait()
	var errs []error
	for _, reps := range r.groups {
		for _, b := range reps {
			if err := b.Close(); err != nil {
				errs = append(errs, err)
			}
		}
	}
	return errors.Join(errs...)
}
