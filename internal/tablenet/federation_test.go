package tablenet

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/bfs"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/perm"
	"repro/internal/tables"
)

// The shallow fixture (k = 3, ≈600 classes) shares the k = 4 fixture's
// alphabet: the pair forms a valid federation whose escalation path is
// genuinely exercised — plenty of cost-4 representatives live only in
// the deep tier.
var (
	shallowOnce sync.Once
	shallowRes  *bfs.Result
	shallowErr  error
)

func shallowTables(t testing.TB) *bfs.Result {
	t.Helper()
	shallowOnce.Do(func() {
		shallowRes, shallowErr = bfs.Search(bfs.GateAlphabet(), 3, nil)
	})
	if shallowErr != nil {
		t.Fatal(shallowErr)
	}
	return shallowRes
}

func shallowBackend(t testing.TB) *tables.Local {
	t.Helper()
	b, err := tables.NewLocal(shallowTables(t))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFederationIdenticalToBigK is the tentpole's acceptance gate: a
// two-tier federation (k=3 fleet fronting the k=4 fleet, both behind
// real servers) must answer every query byte-identically to the big-k
// backend alone — raw lookups and fully-synthesized circuits alike —
// while its counters prove the shallow tier absorbed traffic and only
// the hard keys escalated.
func TestFederationIdenticalToBigK(t *testing.T) {
	res := fixtureTables(t)
	_, addrSmall := startServer(t, shallowBackend(t))
	_, addrBig := startServer(t, fixtureBackend(t))
	clSmall := dialClient(t, addrSmall, nil)
	clBig := dialClient(t, addrBig, nil)

	// Deliberately passed deep-first: NewFederation orders by depth.
	fed, err := NewFederation([]tables.Backend{clBig, clSmall})
	if err != nil {
		t.Fatal(err)
	}
	if got := fed.Meta(); got.K != res.MaxCost || got.Source != "federation(2)" {
		t.Fatalf("federation meta = %+v", got)
	}
	ctx := context.Background()

	// Raw lookups across every level plus absent keys, against the big
	// backend directly.
	direct := fixtureBackend(t)
	rng := rand.New(rand.NewSource(17))
	var keys []uint64
	for c := 0; c <= res.MaxCost; c++ {
		lv := res.Level(c)
		for i := 0; i < lv.Len(); i += 1 + rng.Intn(32) {
			keys = append(keys, uint64(lv.At(i)))
		}
	}
	for i := 0; i < 200; i++ {
		keys = append(keys, uint64(randomPerm16(rng)))
	}
	gotVals := make([]uint16, len(keys))
	gotOK := make([]bool, len(keys))
	if err := fed.LookupBatch(ctx, keys, gotVals, gotOK); err != nil {
		t.Fatal(err)
	}
	wantVals := make([]uint16, len(keys))
	wantOK := make([]bool, len(keys))
	if err := direct.LookupBatch(ctx, keys, wantVals, wantOK); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if gotOK[i] != wantOK[i] || (gotOK[i] && gotVals[i] != wantVals[i]) {
			t.Fatalf("key %#x: federated (%v, %v) != direct (%v, %v)", keys[i], gotVals[i], gotOK[i], wantVals[i], wantOK[i])
		}
	}

	// Full synthesis through the query engine: the federation is one
	// tables.Backend, so core plans scans off the top tier's geometry.
	localSynth, err := core.FromResult(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	localSynth.SetWorkers(1)
	fedSynth, err := core.FromBackend(fed, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fedSynth.K() != localSynth.K() || fedSynth.Horizon() != localSynth.Horizon() {
		t.Fatalf("geometry: federated k=%d h=%d, local k=%d h=%d",
			fedSynth.K(), fedSynth.Horizon(), localSynth.K(), localSynth.Horizon())
	}
	checked := 0
	for i := 0; i < 80; i++ {
		var f perm.Perm
		if i%6 == 5 {
			f = randomPerm16(rng)
		} else {
			f = randomCircuitPerm(rng, 1+rng.Intn(8))
		}
		wantC, wantInfo, wantErr := localSynth.SynthesizeInfoCtx(ctx, f)
		gotC, gotInfo, gotErr := fedSynth.SynthesizeInfoCtx(ctx, f)
		if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && !errors.Is(gotErr, core.ErrBeyondHorizon)) {
			t.Fatalf("spec %v: local err %v, federated err %v", f, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if wantInfo != gotInfo || wantC.String() != gotC.String() {
			t.Fatalf("spec %v:\n  local     %+v %v\n  federated %+v %v", f, wantInfo, wantC, gotInfo, gotC)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d specs compared", checked)
	}

	ts := fed.TierStats()
	if len(ts) != 2 || ts[0].K != 3 || ts[1].K != res.MaxCost {
		t.Fatalf("tier stats mis-ordered: %+v", ts)
	}
	if ts[0].Probes == 0 || ts[0].Hits == 0 {
		t.Fatalf("shallow tier absorbed nothing: %+v", ts[0])
	}
	if ts[0].Escalations == 0 || ts[1].Hits == 0 {
		t.Fatalf("nothing escalated to the deep tier: %+v", ts)
	}
	// The deep tier's probes are the shallow tier's escalations plus the
	// bounded scan/reconstruction batches cost-horizon routing sent to it
	// directly (those never touch tier 0, so they cannot be smaller).
	if ts[1].Probes < ts[0].Escalations {
		t.Fatalf("deep tier probes %d < shallow escalations %d", ts[1].Probes, ts[0].Escalations)
	}
	if ts[0].Probes <= ts[0].Escalations {
		t.Fatalf("escalation is not rare: %d of %d probes escaped the shallow tier", ts[0].Escalations, ts[0].Probes)
	}
	if ts[0].Horizon >= ts[1].Horizon {
		t.Fatalf("tier horizons not increasing: %d then %d", ts[0].Horizon, ts[1].Horizon)
	}
	if cs := fed.CacheStats(); cs.WireBytesRead == 0 {
		t.Fatalf("federation cache stats empty: %+v", cs)
	}
}

func TestFederationRejectsMismatchedTiers(t *testing.T) {
	if _, err := NewFederation(nil); err == nil {
		t.Fatal("empty federation accepted")
	}

	// Two tiers of the same depth: no escalation relationship exists.
	a := fixtureBackend(t)
	b := fixtureBackend(t)
	if _, err := NewFederation([]tables.Backend{a, b}); !errors.Is(err, ErrTierMismatch) {
		t.Fatalf("duplicate-depth tiers: %v", err)
	}

	// Tiers over different alphabets: escalated answers would come from
	// a different table family entirely.
	alphabet, err := bfs.WeightedGateAlphabet(gate.Gate.QuantumCost)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := bfs.Search(alphabet, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := tables.NewLocal(wres)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFederation([]tables.Backend{shallowBackend(t), wb}); !errors.Is(err, ErrTierMismatch) {
		t.Fatalf("cross-alphabet tiers: %v", err)
	}
}

// TestFederationBoundedRouting: cost-horizon routing. A bounded batch
// goes to the single shallowest tier whose depth covers the bound —
// that tier is authoritative for every usable answer, so its miss is
// final and no other tier is probed — failing over deeper only when
// the chosen tier errors.
func TestFederationBoundedRouting(t *testing.T) {
	res := fixtureTables(t)
	shallowK := shallowTables(t).MaxCost
	fed, err := NewFederation([]tables.Backend{shallowBackend(t), fixtureBackend(t)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	easy, hard := uint64(res.Level(1).At(0)), uint64(res.Level(res.MaxCost).At(0))
	keys := []uint64{easy, hard}
	vals := make([]uint16, 2)
	found := make([]bool, 2)

	// bound ≤ shallow K: tier 0 alone answers. The deep key is reported
	// absent — the relaxation the interface licenses — and the deep tier
	// is never touched.
	if err := fed.LookupBatchBounded(ctx, keys, vals, found, shallowK); err != nil {
		t.Fatal(err)
	}
	if !found[0] || found[1] {
		t.Fatalf("bound %d: found = %v, want [true false]", shallowK, found)
	}
	ts := fed.TierStats()
	if ts[0].Probes != 2 || ts[1].Probes != 0 || ts[0].Escalations != 0 {
		t.Fatalf("bound %d probed the wrong tiers: %+v", shallowK, ts)
	}

	// bound beyond shallow K: the deep tier is the authority, tier 0 is
	// skipped entirely — one probe per key, not a walk up the chain.
	if err := fed.LookupBatchBounded(ctx, keys, vals, found, shallowK+1); err != nil {
		t.Fatal(err)
	}
	if !found[0] || !found[1] {
		t.Fatalf("bound %d: found = %v, want both", shallowK+1, found)
	}
	ts = fed.TierStats()
	if ts[0].Probes != 2 || ts[1].Probes != 2 {
		t.Fatalf("bound %d did not route straight to the deep tier: %+v", shallowK+1, ts)
	}

	// Failover: the covering shallow tier is dead; deeper tiers hold
	// strictly more, so the batch lands there and the answer survives.
	srv, addr := startServer(t, shallowBackend(t))
	cl := dialClient(t, addr, &ClientOptions{Conns: 1, CacheKeys: -1, LevelCacheBytes: -1})
	fed2, err := NewFederation([]tables.Backend{cl, fixtureBackend(t)})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	fctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := fed2.LookupBatchBounded(fctx, []uint64{easy}, vals[:1], found[:1], 1); err != nil {
		t.Fatalf("bounded lookup did not fail over past the dead tier: %v", err)
	}
	if !found[0] {
		t.Fatal("failover lost the answer")
	}
	if fed2.TierStats()[0].TierErrors == 0 {
		t.Fatal("dead covering tier not counted")
	}
}

// TestFederationLowerTierOutageDegrades: with the shallow fleet dead
// the federation must keep answering every query — the whole batch
// escalates to the deep tier — and only a dead TOP tier fails hard
// queries (while shallow ones still resolve at tier 0).
func TestFederationLowerTierOutageDegrades(t *testing.T) {
	res := fixtureTables(t)
	srvSmall, addrSmall := startServer(t, shallowBackend(t))
	clSmall := dialClient(t, addrSmall, &ClientOptions{Conns: 1, CacheKeys: -1, LevelCacheBytes: -1})
	fed, err := NewFederation([]tables.Backend{clSmall, fixtureBackend(t)})
	if err != nil {
		t.Fatal(err)
	}
	srvSmall.Close()

	keys := []uint64{uint64(res.Level(res.MaxCost).At(0)), uint64(res.Level(1).At(0))}
	vals := make([]uint16, len(keys))
	found := make([]bool, len(keys))
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := fed.LookupBatch(ctx, keys, vals, found); err != nil {
		t.Fatalf("lookup with dead shallow tier: %v", err)
	}
	if !found[0] || !found[1] {
		t.Fatalf("dead shallow tier lost answers: %v", found)
	}
	ts := fed.TierStats()
	if ts[0].TierErrors == 0 {
		t.Fatalf("shallow outage not counted: %+v", ts[0])
	}
	if ts[0].Escalations != uint64(len(keys)) {
		t.Fatalf("expected the whole batch to escalate, got %d of %d", ts[0].Escalations, len(keys))
	}

	// The reverse wiring: deep tier dead, shallow alive.
	srvBig, addrBig := startServer(t, fixtureBackend(t))
	clBig := dialClient(t, addrBig, &ClientOptions{Conns: 1, CacheKeys: -1, LevelCacheBytes: -1})
	fed2, err := NewFederation([]tables.Backend{shallowBackend(t), clBig})
	if err != nil {
		t.Fatal(err)
	}
	srvBig.Close()

	// A shallow key resolves at tier 0 without touching the dead tier.
	easy := []uint64{uint64(res.Level(1).At(0))}
	if err := fed2.LookupBatch(ctx, easy, make([]uint16, 1), make([]bool, 1)); err != nil {
		t.Fatalf("shallow key needed the dead top tier: %v", err)
	}
	// A deep key cannot be answered authoritatively: loud failure.
	hard := []uint64{uint64(res.Level(res.MaxCost).At(0))}
	if err := fed2.LookupBatch(ctx, hard, make([]uint16, 1), make([]bool, 1)); err == nil {
		t.Fatal("deep key answered with the top tier dead")
	}
}

// TestFederationLevelKeysRoutesShallow: a level held by both tiers is
// read from the shallowest (byte-identically), and a dead shallow tier
// fails over to the deep one.
func TestFederationLevelKeysRoutesShallow(t *testing.T) {
	res := fixtureTables(t)
	fed, err := NewFederation([]tables.Backend{shallowBackend(t), fixtureBackend(t)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	direct := fixtureBackend(t)

	for _, c := range []int{0, 2, 3, res.MaxCost} {
		want := make([]uint64, res.LevelLen(c))
		got := make([]uint64, res.LevelLen(c))
		if err := direct.LevelKeys(ctx, c, 0, want); err != nil {
			t.Fatal(err)
		}
		if err := fed.LevelKeys(ctx, c, 0, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("level %d key %d: federated %#x != direct %#x", c, i, got[i], want[i])
			}
		}
	}
	ts := fed.TierStats()
	if ts[0].LevelReads != 3 { // levels 0, 2, 3 belong to the shallow tier
		t.Fatalf("shallow tier served %d level reads, want 3", ts[0].LevelReads)
	}
	if ts[1].LevelReads != 1 { // level 4 only the deep tier holds
		t.Fatalf("deep tier served %d level reads, want 1", ts[1].LevelReads)
	}
	if err := fed.LevelKeys(ctx, res.MaxCost+1, 0, make([]uint64, 1)); err == nil {
		t.Fatal("level beyond the top tier accepted")
	}

	// Failover: shallow tier behind a dead server, reads land deep.
	srv, addr := startServer(t, shallowBackend(t))
	cl := dialClient(t, addr, &ClientOptions{Conns: 1, LevelCacheBytes: -1, CacheKeys: -1})
	fed2, err := NewFederation([]tables.Backend{cl, fixtureBackend(t)})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	fctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	out := make([]uint64, res.LevelLen(1))
	if err := fed2.LevelKeys(fctx, 1, 0, out); err != nil {
		t.Fatalf("level read did not fail over past the dead shallow tier: %v", err)
	}
	if fed2.TierStats()[0].TierErrors == 0 {
		t.Fatal("failed shallow level read not counted")
	}
}

// TestFederationHealthFolding: the federation is Down only when its top
// tier is down; a shallow-tier outage merely degrades it (big-k-only
// serving).
func TestFederationHealthFolding(t *testing.T) {
	srvSmall, addrSmall := startServer(t, shallowBackend(t))
	srvBig, addrBig := startServer(t, fixtureBackend(t))
	rSmall, err := NewRouter([]tables.Backend{dialClient(t, addrSmall, nil)})
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := NewRouter([]tables.Backend{dialClient(t, addrBig, nil)})
	if err != nil {
		t.Fatal(err)
	}
	fed, err := NewFederation([]tables.Backend{rSmall, rBig})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	h := fed.Health(ctx)
	if h.Down() || h.Degraded {
		t.Fatalf("healthy federation reports %+v", h)
	}
	if len(h.Replicas) != 2 {
		t.Fatalf("expected 2 replica statuses, got %d", len(h.Replicas))
	}

	srvSmall.Close()
	hctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	h = fed.Health(hctx)
	if h.Down() {
		t.Fatalf("shallow outage reported as Down: %+v", h)
	}
	if !h.Degraded {
		t.Fatalf("shallow outage not Degraded: %+v", h)
	}

	srvBig.Close()
	hctx2, cancel2 := context.WithTimeout(ctx, 5*time.Second)
	defer cancel2()
	if h = fed.Health(hctx2); !h.Down() {
		t.Fatalf("top-tier outage not Down: %+v", h)
	}
}

// TestTopologyPinsDepth: a topology that names its tier's depth refuses
// a member serving a different one — the guard that keeps a small-k
// shard out of the big-k fleet in a heterogeneous deployment.
func TestTopologyPinsDepth(t *testing.T) {
	_, addr := startServer(t, fixtureBackend(t)) // serves k=4
	topo := &Topology{Generation: 1, K: 3, Ranges: 1, Members: []string{addr}}
	dial := func(a string) (tables.Backend, error) { return Dial(a, nil) }
	if _, err := BuildFleet(topo, dial); !errors.Is(err, ErrTierMismatch) {
		t.Fatalf("depth-pinned topology accepted a k=4 member: %v", err)
	}
	topo.K = 4
	groups, err := BuildFleet(topo, dial)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		for _, b := range g {
			b.Close()
		}
	}

	bad := &Topology{Generation: 1, K: -1, Ranges: 1, Members: []string{addr}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative depth pin validated")
	}
}
