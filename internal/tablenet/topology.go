package tablenet

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/hashtab"
	"repro/internal/tables"
)

// Topology is the declarative description of a serving fleet — the
// fleet.json a router daemon loads at start and reloads on SIGHUP or
// POST /admin/topology. It names the members; which member serves which
// hash range is decided here, by rendezvous hashing filtered through
// ownership (a member only qualifies for a range its store covers), so
// two routers reading the same topology always wire the same fleet
// without coordinating.
//
// Generation orders topologies: a reload only applies when the incoming
// generation is strictly newer, so a stale file redelivered by a config
// system cannot roll the fleet backwards.
type Topology struct {
	// Generation is the topology's monotonic version.
	Generation uint64 `json:"generation"`
	// K, when set, pins the table depth this fleet must serve: BuildFleet
	// refuses a member whose handshake advertises a different depth. In a
	// heterogeneous federation one topology document per tier names its
	// depth explicitly, so a small-k shard accidentally wired into the
	// big-k fleet (or vice versa) is refused at build time instead of
	// answering with the wrong geometry. 0 means "any depth" (homogeneous
	// fleets don't need the pin — Compatible catches mixed generations).
	K int `json:"k,omitempty"`
	// Ranges is the hash-range count queries partition over.
	Ranges int `json:"ranges"`
	// Replication is how many members rendezvous assignment places on
	// each range (0 means 1). Ignored when Groups pins the layout.
	Replication int `json:"replication,omitempty"`
	// Members are the shard addresses rendezvous assignment draws from.
	Members []string `json:"members,omitempty"`
	// Groups, when set, pins the layout explicitly: Groups[g] lists the
	// replica addresses of hash range g. Overrides Members/Replication.
	Groups [][]string `json:"groups,omitempty"`
}

// ParseTopology decodes and validates a topology document.
func ParseTopology(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("tablenet: parsing topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// LoadTopologyFile reads and parses a topology file.
func LoadTopologyFile(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseTopology(data)
}

// Validate checks the topology's internal consistency.
func (t *Topology) Validate() error {
	if t.K < 0 {
		return fmt.Errorf("tablenet: topology pins negative table depth k=%d", t.K)
	}
	if len(t.Groups) > 0 {
		if t.Ranges != 0 && t.Ranges != len(t.Groups) {
			return fmt.Errorf("tablenet: topology declares %d ranges but pins %d groups", t.Ranges, len(t.Groups))
		}
		for g, reps := range t.Groups {
			if len(reps) == 0 {
				return fmt.Errorf("tablenet: topology group %d has no replicas", g)
			}
		}
		return nil
	}
	if t.Ranges < 1 {
		return fmt.Errorf("tablenet: topology needs at least one range (got %d)", t.Ranges)
	}
	if len(t.Members) == 0 {
		return fmt.Errorf("tablenet: topology has no members")
	}
	seen := make(map[string]struct{}, len(t.Members))
	for _, m := range t.Members {
		if m == "" {
			return fmt.Errorf("tablenet: topology member with empty address")
		}
		if _, dup := seen[m]; dup {
			return fmt.Errorf("tablenet: topology member %q listed twice", m)
		}
		seen[m] = struct{}{}
	}
	return nil
}

// NumRanges returns the effective range count (pinned groups win).
func (t *Topology) NumRanges() int {
	if len(t.Groups) > 0 {
		return len(t.Groups)
	}
	return t.Ranges
}

// rendezvousScore ranks member addr for hash range g: the member with
// the highest score owns the range's first replica slot, the next
// highest its second, and so on. Hashing (addr, range) jointly means
// adding or removing one member only moves the ranges that member wins —
// the minimal-disruption property that keeps a membership change from
// reshuffling the whole fleet's page caches.
func rendezvousScore(addr string, g int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return hashtab.Hash64Shift(h ^ uint64(g)<<1)
}

// Assign resolves the topology to an explicit groups[range][replica]
// address layout. owned reports each member's owned key range (what its
// hello advertised); members whose store does not cover a range are
// filtered from that range's candidates before rendezvous ranking, so a
// fleet of split stores lands each store on exactly the range it holds.
// A range with no covering member is an error — assignment must never
// produce a fleet with a hole.
func (t *Topology) Assign(owned func(addr string) (lo, hi uint64)) ([][]string, error) {
	if len(t.Groups) > 0 {
		return t.Groups, nil
	}
	repl := t.Replication
	if repl <= 0 {
		repl = 1
	}
	groups := make([][]string, t.Ranges)
	for g := range groups {
		wiredLo, wiredHi := tables.RangeOf(g, t.Ranges)
		cands := make([]string, 0, len(t.Members))
		for _, m := range t.Members {
			lo, hi := owned(m)
			if lo <= wiredLo && wiredHi <= hi {
				cands = append(cands, m)
			}
		}
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: no member owns range %d of %d", ErrOwnership, g, t.Ranges)
		}
		sort.Slice(cands, func(a, b int) bool {
			sa, sb := rendezvousScore(cands[a], g), rendezvousScore(cands[b], g)
			if sa != sb {
				return sa > sb
			}
			return cands[a] < cands[b]
		})
		n := min(repl, len(cands))
		groups[g] = append([]string(nil), cands[:n]...)
	}
	return groups, nil
}

// BuildFleet dials the topology's members (each address once, via dial)
// and wires them into groups[range][replica] backends, rendezvous-
// assigned and ownership-filtered by what each member's handshake
// actually advertised. On any error every dialed backend is closed. The
// caller typically hands the groups to NewReplicatedRouter, which
// re-verifies ownership against the wiring as its own last line of
// defense.
func BuildFleet(t *Topology, dial func(addr string) (tables.Backend, error)) ([][]tables.Backend, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	backends := make(map[string]tables.Backend)
	closeAll := func() {
		for _, b := range backends {
			b.Close()
		}
	}
	get := func(addr string) (tables.Backend, error) {
		if b, ok := backends[addr]; ok {
			return b, nil
		}
		b, err := dial(addr)
		if err != nil {
			return nil, fmt.Errorf("tablenet: dialing member %s: %w", addr, err)
		}
		backends[addr] = b
		return b, nil
	}
	// Dial the member set first: ownership filtering needs every
	// member's advertised range before any assignment is decided.
	members := t.Members
	if len(t.Groups) > 0 {
		members = nil
		for _, reps := range t.Groups {
			members = append(members, reps...)
		}
	}
	for _, m := range members {
		b, err := get(m)
		if err != nil {
			closeAll()
			return nil, err
		}
		if t.K != 0 && b.Meta().K != t.K {
			closeAll()
			return nil, fmt.Errorf("%w: member %s serves depth k=%d, topology pins k=%d", ErrTierMismatch, m, b.Meta().K, t.K)
		}
	}
	layout, err := t.Assign(func(addr string) (lo, hi uint64) {
		if ro, ok := backends[addr].(tables.RangeOwner); ok {
			return ro.OwnedRange()
		}
		return 0, tables.RangeSpace
	})
	if err != nil {
		closeAll()
		return nil, err
	}
	groups := make([][]tables.Backend, len(layout))
	used := make(map[string]struct{}, len(backends))
	for g, reps := range layout {
		groups[g] = make([]tables.Backend, len(reps))
		for i, addr := range reps {
			b, err := get(addr)
			if err != nil {
				closeAll()
				return nil, err
			}
			groups[g][i] = b
			used[addr] = struct{}{}
		}
	}
	// A member dialed for the ownership census but assigned nowhere
	// (outscored everywhere by rendezvous) must not leak its connection:
	// the router will never close what it was never given.
	for addr, b := range backends {
		if _, ok := used[addr]; !ok {
			b.Close()
		}
	}
	return groups, nil
}
