package tablenet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"
)

// This file is the client's retry discipline. Every tablenet request is
// an idempotent read of an immutable table generation (the handshake
// pins it), so any failure whose cause is the *transport* — a dial that
// never connected, a connection the peer closed, a frame that timed out
// or failed its checksum — can be retried on a fresh connection without
// changing the answer. Failures whose cause is the *conversation* — the
// peer rejected the request (ErrRemote), the peer speaks a different
// contract (ErrProtocol, which includes the reconnect meta-mismatch
// guard) — are deterministic and retrying them just repeats the failure,
// so they surface immediately.

// Retry defaults; see RetryPolicy.
const (
	DefaultRetryAttempts  = 4
	DefaultRetryBudget    = 8
	DefaultBaseBackoff    = 5 * time.Millisecond
	DefaultMaxBackoff     = 500 * time.Millisecond
	DefaultAttemptTimeout = 15 * time.Second

	// minAttemptTimeout floors the per-attempt share of a nearly-spent
	// query deadline, so the final attempts are real tries rather than
	// guaranteed timeouts.
	minAttemptTimeout = 50 * time.Millisecond
)

// RetryPolicy governs how a Client converts transport failures into
// fresh attempts. The zero value picks the defaults; MaxAttempts: 1
// disables retries entirely (one attempt, no backoff).
type RetryPolicy struct {
	// MaxAttempts bounds tries per round trip, the first included
	// (default DefaultRetryAttempts).
	MaxAttempts int
	// Budget bounds the total retries spent across all round trips of
	// one batched call (a LookupBatch or LevelKeys that spans several
	// wire chunks draws every retry from one budget), so a flapping
	// shard cannot multiply worst-case latency by the chunk count
	// (default DefaultRetryBudget).
	Budget int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it up to MaxBackoff, and every delay is jittered to
	// 50–100% of its nominal value so a fleet of clients released by
	// one shard failure does not reconverge in lockstep (defaults
	// DefaultBaseBackoff / DefaultMaxBackoff).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds each attempt (pool wait + dial + round
	// trip). When the query ctx carries a deadline, each attempt is
	// further clipped to its fair share of the time remaining —
	// remaining/attempts-left, floored at minAttemptTimeout — so a
	// stalled first attempt cannot eat the whole deadline and turn the
	// retries into dead code. 0 means DefaultAttemptTimeout; negative
	// leaves attempts bounded only by the ctx and the maxStall
	// backstop (default DefaultAttemptTimeout).
	AttemptTimeout time.Duration
	// Seed fixes the jitter sequence for deterministic tests; 0 seeds
	// from the clock.
	Seed int64
}

// withDefaults resolves the zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryAttempts
	}
	if p.Budget <= 0 {
		p.Budget = DefaultRetryBudget
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	if p.AttemptTimeout == 0 {
		p.AttemptTimeout = DefaultAttemptTimeout
	}
	return p
}

// retryable classifies an attempt failure: true for transport faults
// (dial failure, clean close, reset, truncated or corrupted frame, an
// I/O timeout) where a fresh connection may well succeed, false for
// deterministic conversation failures (the peer's own error frame, a
// protocol/meta violation) that would only repeat.
//
// Context errors are deliberately not special-cased here: the retry
// loop checks the query ctx itself before consulting this function and
// reports its cause directly, so an expired query never reaches
// classification. Per-attempt deadlines are armed on the socket and
// surface as I/O timeouts (os.ErrDeadlineExceeded), which the default
// case retries.
func retryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrRemote):
		return false
	case errors.Is(err, ErrOwnership), errors.Is(err, ErrDraining):
		// Deterministic shard state, not a transport fault: redialing the
		// same shard returns the same answer. Surfacing immediately is
		// what lets the router fail over to a sibling replica instead of
		// burning the retry budget here.
		return false
	case errors.Is(err, ErrChecksum):
		return true
	case errors.Is(err, io.ErrUnexpectedEOF):
		// A truncated frame is a peer dying mid-write (or a torn
		// transport), not a contract violation: kept explicit (though
		// the default would catch it) because it must stay retryable
		// even if a future wrap adds ErrProtocol above it.
		return true
	case errors.Is(err, ErrProtocol):
		return false
	default:
		return true
	}
}

// retryBudget is the shared retry allowance of one batched call; every
// chunk's round trips draw from it.
type retryBudget struct {
	spent int
}

// jitterSource is the client's lock-guarded jitter randomness (shared
// by every in-flight retry loop).
type jitterSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitterSource(seed int64) *jitterSource {
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &jitterSource{rng: rand.New(rand.NewSource(seed))}
}

// jitter returns a uniform duration in [0, d).
func (j *jitterSource) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	j.mu.Lock()
	v := time.Duration(j.rng.Int63n(int64(d)))
	j.mu.Unlock()
	return v
}

// backoffFor computes the nth retry's delay (n is 1-based): capped
// exponential growth from BaseBackoff, jittered to 50–100%.
func (cl *Client) backoffFor(n int) time.Duration {
	p := cl.retry
	d := p.BaseBackoff
	for i := 1; i < n && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d/2 + cl.jitter.jitter(d/2)
}

// sleepBackoff waits out one backoff delay, or returns early with the
// ctx error if the query is cancelled first.
func (cl *Client) sleepBackoff(ctx context.Context, n int) error {
	t := time.NewTimer(cl.backoffFor(n))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// attemptDeadline computes one attempt's I/O deadline from the query
// ctx: bounded by AttemptTimeout and, when the query carries a
// deadline, by that deadline's fair share across the attempts still
// allowed — remaining/attempts-left, floored at minAttemptTimeout — so
// a stalled first attempt cannot eat the whole deadline and turn the
// retries into dead code. The zero time means unbounded (negative
// AttemptTimeout with no ctx deadline). It is a plain time, not a
// derived context, so the happy path stays allocation-free: roundTrip
// arms it on the socket directly.
func (cl *Client) attemptDeadline(ctx context.Context, attempt int) time.Time {
	p := cl.retry
	timeout := p.AttemptTimeout
	if d, ok := ctx.Deadline(); ok {
		left := p.MaxAttempts - attempt + 1
		if left < 1 {
			left = 1
		}
		share := time.Until(d) / time.Duration(left)
		if share < minAttemptTimeout {
			share = minAttemptTimeout
		}
		if timeout <= 0 || share < timeout {
			timeout = share
		}
	}
	if timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(timeout)
}

// unavailable wraps the last transport failure once the retry budget is
// spent: the caller-facing "this shard cannot be reached right now"
// error a router keys failover on.
func (cl *Client) unavailable(attempts int, err error) error {
	return fmt.Errorf("%w: %s after %d attempts: %w", ErrUnavailable, cl.addr, attempts, err)
}
