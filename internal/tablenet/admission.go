package tablenet

import (
	"sync"
	"sync/atomic"

	"repro/internal/hashtab"
)

// TinyLFU admission for the hot-key cache (Einziger & Friedman,
// "TinyLFU: A Highly Efficient Cache Admission Policy").
//
// The problem it solves is specific to this workload: direct lookups
// probe a small recurring working set of canonical keys, while every
// beyond-horizon query's meet-in-the-middle scan probes thousands of
// keys that will never be seen again. Blind insert-on-miss lets that
// one-shot scan stream evict the recurring set — the cache churns at
// 0% effectiveness exactly when the backend is busiest. TinyLFU keeps
// an approximate frequency histogram of *recent* traffic in a 4-bit
// count-min sketch and admits a new key only if it has been seen more
// often than the entry it would evict. One-shot keys lose that
// comparison by construction; the working set stays resident.
//
// The sketch is blocked for cache locality: each key's four counters
// live in one 64-byte aligned group of eight words, so an estimate or
// increment touches a single cache line. Counters are 4-bit nibbles
// packed 16 per word, incremented with a single CAS (lost races just
// under-count — the sketch is approximate by design, and an undercount
// only delays admission by one encounter). Aging is the classic reset:
// after sampleCap observed increments every counter halves, so the
// histogram tracks recent frequency, not all-time, and yesterday's hot
// keys cannot squat on the cache forever.

// admissionNibbles is the number of counters consulted per key (the
// count-min depth).
const admissionNibbles = 4

// admissionBlockWords is the word width of one counter block: 8×8 bytes
// = one cache line, 64 nibble counters to pick from.
const admissionBlockWords = 8

type admissionSketch struct {
	blockMask uint64          // block count − 1 (power of two)
	words     []atomic.Uint64 // admissionBlockWords per block
	adds      atomic.Uint64   // increments since the last halving
	sampleCap uint64          // halve every counter past this many adds
	halveMu   sync.Mutex      // one halver at a time; others skip
}

// newAdmissionSketch sizes the sketch for a cache of roughly capacity
// entries: ~8 nibble counters per cached entry keeps estimate error
// low at 68 bytes per cache line of counters, and the halving sample
// is 10× capacity — the sketch remembers an order of magnitude more
// traffic than the cache holds, which is what lets a recurring key
// out-count a one-shot stream.
func newAdmissionSketch(capacity int) *admissionSketch {
	if capacity < 1 {
		capacity = 1
	}
	blocks := 1
	for blocks*admissionBlockWords*16 < capacity*8 {
		blocks <<= 1
	}
	return &admissionSketch{
		blockMask: uint64(blocks - 1),
		words:     make([]atomic.Uint64, blocks*admissionBlockWords),
		sampleCap: uint64(capacity) * 10,
	}
}

// counterAt derives the j-th counter position for hash h: a word index
// into the key's block and the nibble's bit shift within that word.
// All four positions come from independent bits of the one hash.
func (s *admissionSketch) counterAt(h uint64, j int) (word int, shift uint) {
	n := h >> (8 + 6*j) & 63 // one of the block's 64 nibbles
	block := h & s.blockMask
	return int(block)*admissionBlockWords + int(n>>4), uint(n&15) * 4
}

// inc bumps the key's counters (saturating at 15) and ages the sketch
// when the sample window is spent.
func (s *admissionSketch) inc(key uint64) {
	h := hashtab.Hash64Shift(key)
	for j := 0; j < admissionNibbles; j++ {
		w, shift := s.counterAt(h, j)
		// One CAS attempt per counter: a lost race is a lost increment,
		// which the estimate tolerates and the hot path appreciates.
		old := s.words[w].Load()
		if old>>shift&0xf < 15 {
			s.words[w].CompareAndSwap(old, old+1<<shift)
		}
	}
	if s.adds.Add(1) >= s.sampleCap {
		s.halve()
	}
}

// estimate returns the key's approximate recent frequency: the minimum
// of its counters (count-min — collisions only inflate, so min bounds
// the true count from above).
func (s *admissionSketch) estimate(key uint64) uint32 {
	h := hashtab.Hash64Shift(key)
	est := uint32(15)
	for j := 0; j < admissionNibbles; j++ {
		w, shift := s.counterAt(h, j)
		if c := uint32(s.words[w].Load() >> shift & 0xf); c < est {
			est = c
		}
	}
	return est
}

// halve ages every counter by one bit. TryLock: concurrent callers that
// lose the race skip — the winner is already halving, and an extra
// window's worth of precision is worth nothing here. Increments racing
// the sweep land before or after their word is halved; either order is
// a valid approximate histogram.
func (s *admissionSketch) halve() {
	if !s.halveMu.TryLock() {
		return
	}
	defer s.halveMu.Unlock()
	if s.adds.Load() < s.sampleCap {
		return // another halver finished while we waited
	}
	s.adds.Store(0)
	for i := range s.words {
		for {
			old := s.words[i].Load()
			if s.words[i].CompareAndSwap(old, old>>1&0x7777777777777777) {
				break
			}
		}
	}
}

// bytes is the sketch's fixed memory footprint.
func (s *admissionSketch) bytes() int64 { return int64(len(s.words)) * 8 }
