package tablenet

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/hashtab"
)

// This file is the client's tiered read path. It exists because of one
// property the whole system is built on: frozen tables are immutable.
// The handshake pins the client to a single table generation (a
// reconnect onto different tables fails loudly), so every byte fetched
// over the wire — a canonical key's packed value, its absence, a level
// key range — stays true for the client's lifetime and is cacheable
// forever. Three tiers exploit that:
//
//  1. A sharded hot-key cache (set-associative, lock-free reads) over
//     LookupBatch results. Partial hits split the batch: hit keys are
//     answered locally and only the misses travel.
//  2. An immutable level-block cache: LevelKeys ranges are fetched as
//     aligned blocks and kept, so repeated meet-in-the-middle scans stop
//     re-fetching the low-level key ranges entirely.
//  3. Singleflight coalescing: concurrent identical misses (the same
//     level block, or the same miss-key batch — e.g. many clients racing
//     the same specification) share one round trip.

// hotWays is the set associativity of the hot-key cache: victim
// selection is LRU-by-tick within a 4-slot set, which captures the
// LRU-ish behaviour of a true list LRU at array-probe cost.
const hotWays = 4

// hotLocks is the number of write locks striped over the sets (reads
// never lock).
const hotLocks = 256

// hotKeyCache is a fixed-size set-associative cache over canonical
// table keys. Reads are lock-free, guarded by a per-slot sequence
// counter (a seqlock): a writer bumps the slot's seq to odd, rewrites
// key and value, and bumps it back to even; a reader accepts a value
// only if it observed the same even seq before and after reading it.
// Re-checking the key alone would not be enough — two back-to-back
// evictions can cycle a slot away from key K and back to K (ABA) around
// a preempted reader, which would otherwise pair K with the intervening
// entry's value.
type hotKeyCache struct {
	mask  uint64 // set count - 1 (set count is a power of two)
	keys  []atomic.Uint64
	vals  []atomic.Uint32 // hotFoundBit | packed uint16 value
	seqs  []atomic.Uint32 // per-slot seqlock: odd while being rewritten
	ticks []atomic.Uint32 // per-slot last-use tick for in-set LRU
	tick  atomic.Uint32
	locks [hotLocks]sync.Mutex

	// sketch gates insertion (TinyLFU admission, see admission.go); nil
	// means admit everything (AdmissionAll). rejects counts insertions
	// the sketch refused.
	sketch  *admissionSketch
	rejects atomic.Uint64

	hits   atomic.Uint64
	misses atomic.Uint64
}

const hotFoundBit = 1 << 16

// newHotKeyCache sizes the cache for roughly capacity entries, rounded
// up to a power-of-two set count. admit enables TinyLFU admission.
func newHotKeyCache(capacity int, admit bool) *hotKeyCache {
	sets := 1
	for sets*hotWays < capacity {
		sets <<= 1
	}
	n := sets * hotWays
	c := &hotKeyCache{
		mask:  uint64(sets - 1),
		keys:  make([]atomic.Uint64, n),
		vals:  make([]atomic.Uint32, n),
		seqs:  make([]atomic.Uint32, n),
		ticks: make([]atomic.Uint32, n),
	}
	if admit {
		c.sketch = newAdmissionSketch(n)
	}
	return c
}

// get probes the cache. ok reports a usable entry; found mirrors the
// backend's presence bit (negative results are cached too — a key's
// absence from an immutable table is as permanent as its value).
func (c *hotKeyCache) get(key uint64) (val uint16, found, ok bool) {
	set := hashtab.Hash64Shift(key) & c.mask
	base := set * hotWays
	for i := base; i < base+hotWays; i++ {
		if c.keys[i].Load() != key {
			continue
		}
		s1 := c.seqs[i].Load()
		if s1&1 != 0 {
			return 0, false, false // slot mid-rewrite; a miss is always safe
		}
		v := c.vals[i].Load()
		if c.seqs[i].Load() != s1 || c.keys[i].Load() != key {
			return 0, false, false // torn by concurrent eviction(s)
		}
		// Tick the slot so in-set LRU keeps hot keys; a plain store of
		// the current tick is enough (no increment — ordering between
		// concurrent readers is irrelevant). The admission sketch records
		// the hit only when the slot's tick is stale: the tick advances
		// only on insertions, so a fully-warm cache pays zero sketch
		// overhead, while under churn — exactly when admission decisions
		// are being made — resident hot keys keep their frequency fresh.
		cur := c.tick.Load()
		if c.ticks[i].Load() != cur {
			if c.sketch != nil {
				c.sketch.inc(key)
			}
			c.ticks[i].Store(cur)
		}
		return uint16(v), v&hotFoundBit != 0, true
	}
	return 0, false, false
}

// put inserts one immutable result, evicting the least-recently-used
// slot of the key's set when it is full.
func (c *hotKeyCache) put(key uint64, val uint16, found bool) {
	if key == 0 {
		return // zero is the empty-slot sentinel (never a permutation)
	}
	set := hashtab.Hash64Shift(key) & c.mask
	base := set * hotWays
	lk := &c.locks[set&(hotLocks-1)]
	lk.Lock()
	victim := base
	oldest := ^uint32(0)
	empty := false
	for i := base; i < base+hotWays; i++ {
		k := c.keys[i].Load()
		if k == key {
			lk.Unlock()
			return // immutable: already present with the same value
		}
		if k == 0 {
			victim, empty = i, true
			break
		}
		if t := c.ticks[i].Load(); t <= oldest {
			oldest, victim = t, i
		}
	}
	if c.sketch != nil {
		// Record this encounter first — a key rejected now gains the
		// history to win admission when it recurs — then, for a full
		// set, insert only if the candidate's recent frequency strictly
		// beats the would-be victim's. A one-shot scan key (estimate
		// bounded by its single encounter) loses to any key with
		// history, which is the whole point: beyond-horizon floods stop
		// evicting the direct-lookup working set.
		c.sketch.inc(key)
		if !empty && c.sketch.estimate(key) <= c.sketch.estimate(c.keys[victim].Load()) {
			c.rejects.Add(1)
			lk.Unlock()
			return
		}
	}
	packed := uint32(val)
	if found {
		packed |= hotFoundBit
	}
	c.seqs[victim].Add(1) // odd: readers reject the slot
	c.keys[victim].Store(0)
	c.vals[victim].Store(packed)
	c.ticks[victim].Store(c.tick.Add(1))
	c.keys[victim].Store(key)
	c.seqs[victim].Add(1) // even again: slot consistent
	lk.Unlock()
}

// bytes is the cache's fixed memory footprint (admission sketch
// included).
func (c *hotKeyCache) bytes() int64 {
	n := int64(len(c.keys)) * (8 + 4 + 4 + 4)
	if c.sketch != nil {
		n += c.sketch.bytes()
	}
	return n
}

// levelBlockKeys is the granularity of the level cache: level ranges
// are fetched and kept as aligned blocks of this many keys (16 KiB on
// the wire). Meet-in-the-middle scans read levels sequentially from
// index zero, so one block fetch serves many consecutive chunk
// requests, and low levels — the hottest, scanned by every query that
// splits — fit in a handful of blocks.
const levelBlockKeys = 2048

// levelCache holds immutable level-key blocks behind atomic pointers:
// a block is fetched once (singleflight), published, and never changes.
// A byte budget bounds growth; once it is exhausted new blocks are
// still fetched and served but not retained — since scans touch low
// levels first, the retained set naturally converges to the hottest
// prefix of the key space.
type levelCache struct {
	budget int64
	bytes  atomic.Int64
	blocks [][]atomic.Pointer[[]uint64] // [level][blockIndex]

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64

	mu      sync.Mutex
	flights map[uint64]*blockFlight
}

// blockFlight is one in-flight block fetch; latecomers wait on done and
// read blk/err.
type blockFlight struct {
	done chan struct{}
	blk  *[]uint64
	err  error
}

func newLevelCache(levelCounts []int, budget int64) *levelCache {
	lc := &levelCache{
		budget:  budget,
		blocks:  make([][]atomic.Pointer[[]uint64], len(levelCounts)),
		flights: make(map[uint64]*blockFlight),
	}
	for c, n := range levelCounts {
		lc.blocks[c] = make([]atomic.Pointer[[]uint64], (n+levelBlockKeys-1)/levelBlockKeys)
	}
	return lc
}

func blockID(level, idx int) uint64 { return uint64(level)<<32 | uint64(idx) }

// block returns level c's idx-th key block, serving it from the cache
// when present and otherwise fetching it through fetch — exactly once
// per concurrent set of callers. blockN is the block's key count
// (shorter for the level's final block).
//
// The fetch runs detached from any single caller's context: a shared
// flight must not inherit one query's cancellation or deadline and
// poison every coalesced waiter with it. Each caller — the one that
// launched the flight included — waits under its own ctx; a caller
// whose ctx dies gets its own ctx error while the flight runs on (the
// wire layer's stall backstop bounds it) and still fills the cache.
func (lc *levelCache) block(ctx context.Context, c, idx, blockN int, fetch func(ctx context.Context, lo int, out []uint64) error) (*[]uint64, error) {
	if blk := lc.blocks[c][idx].Load(); blk != nil {
		lc.hits.Add(1)
		return blk, nil
	}
	lc.misses.Add(1)
	id := blockID(c, idx)
	lc.mu.Lock()
	fl, ok := lc.flights[id]
	if ok {
		lc.coalesced.Add(1)
	} else {
		// Double-check under the lock: the flight we would have joined
		// may have just completed and published.
		if blk := lc.blocks[c][idx].Load(); blk != nil {
			lc.mu.Unlock()
			return blk, nil
		}
		fl = &blockFlight{done: make(chan struct{})}
		lc.flights[id] = fl
	}
	lc.mu.Unlock()
	if !ok {
		go func(fctx context.Context) {
			buf := make([]uint64, blockN)
			fl.err = fetch(fctx, idx*levelBlockKeys, buf)
			if fl.err == nil {
				fl.blk = &buf
				// Retain only while the budget allows; an over-budget
				// block is still returned to every waiter of this flight.
				if sz := int64(blockN) * 8; lc.bytes.Add(sz) <= lc.budget {
					lc.blocks[c][idx].Store(fl.blk)
				} else {
					lc.bytes.Add(-sz)
				}
			}
			close(fl.done)
			lc.mu.Lock()
			delete(lc.flights, id)
			lc.mu.Unlock()
		}(context.WithoutCancel(ctx))
	}
	select {
	case <-fl.done:
		return fl.blk, fl.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// lookupFlight is one in-flight miss-batch fetch. keys is the flight's
// own copy; identical concurrent batches (compared by content, not just
// hash) wait on done and copy vals/found out.
type lookupFlight struct {
	keys  []uint64
	vals  []uint16
	found []bool
	err   error
	done  chan struct{}
}

// lookupFlights indexes in-flight miss batches by a content hash, with
// per-bucket lists so hash collisions degrade to extra comparisons,
// never wrong answers.
type lookupFlights struct {
	mu        sync.Mutex
	inflight  map[uint64][]*lookupFlight
	coalesced atomic.Uint64
}

func newLookupFlights() *lookupFlights {
	return &lookupFlights{inflight: make(map[uint64][]*lookupFlight)}
}

// hashKeys fingerprints a key batch (order-sensitive: batches coalesce
// only when byte-identical, which is what preserves response order).
func hashKeys(keys []uint64) uint64 {
	h := uint64(len(keys))
	for _, k := range keys {
		h = hashtab.Hash64Shift(h ^ k)
	}
	return h
}

func equalKeys(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, k := range a {
		if b[i] != k {
			return false
		}
	}
	return true
}

// do resolves one miss batch: if an identical batch is already in
// flight its result is shared; otherwise fetch runs exactly once and
// its results are published to every waiter. vals/found are filled on
// success.
//
// As with level blocks, the fetch itself runs detached from any single
// caller's context (context.WithoutCancel): a coalesced waiter must
// never inherit the launching query's cancellation or deadline. Every
// caller waits under its own ctx; the flight outlives a canceled
// caller, bounded by the wire layer's stall backstop, and its results
// still reach the cache.
func (lf *lookupFlights) do(ctx context.Context, keys []uint64, vals []uint16, found []bool, fetch func(ctx context.Context, keys []uint64, vals []uint16, found []bool) error) error {
	h := hashKeys(keys)
	lf.mu.Lock()
	var fl *lookupFlight
	for _, o := range lf.inflight[h] {
		if equalKeys(o.keys, keys) {
			fl = o
			lf.coalesced.Add(1)
			break
		}
	}
	launched := false
	if fl == nil {
		fl = &lookupFlight{
			keys:  append([]uint64(nil), keys...),
			vals:  make([]uint16, len(keys)),
			found: make([]bool, len(keys)),
			done:  make(chan struct{}),
		}
		lf.inflight[h] = append(lf.inflight[h], fl)
		launched = true
	}
	lf.mu.Unlock()
	if launched {
		go func(fctx context.Context) {
			fl.err = fetch(fctx, fl.keys, fl.vals, fl.found)
			close(fl.done)
			lf.mu.Lock()
			bucket := lf.inflight[h]
			for i, o := range bucket {
				if o == fl {
					bucket[i] = bucket[len(bucket)-1]
					bucket = bucket[:len(bucket)-1]
					break
				}
			}
			if len(bucket) == 0 {
				delete(lf.inflight, h)
			} else {
				lf.inflight[h] = bucket
			}
			lf.mu.Unlock()
		}(context.WithoutCancel(ctx))
	}
	select {
	case <-fl.done:
		if fl.err == nil {
			copy(vals, fl.vals)
			copy(found, fl.found)
		}
		return fl.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// batchScratch is the pooled per-call workspace of the cached
// LookupBatch path, so a fully-cached probe allocates nothing.
type batchScratch struct {
	idx   []int
	keys  []uint64
	vals  []uint16
	found []bool
}

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (sc *batchScratch) grow(n int) {
	if cap(sc.keys) < n {
		sc.idx = make([]int, 0, n)
		sc.keys = make([]uint64, 0, n)
		sc.vals = make([]uint16, n)
		sc.found = make([]bool, n)
	}
}
