package tablenet

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/hashtab"
)

func TestAdmissionSketchCounts(t *testing.T) {
	s := newAdmissionSketch(4096)
	hot, cold := uint64(0xDEADBEEF), uint64(0xCAFEF00D)
	for i := 0; i < 12; i++ {
		s.inc(hot)
	}
	if e := s.estimate(hot); e < 12 {
		t.Fatalf("estimate(hot) = %d after 12 increments", e)
	}
	if eh, ec := s.estimate(hot), s.estimate(cold); ec >= eh {
		t.Fatalf("unseen key estimate %d >= hot key estimate %d", ec, eh)
	}
	// Saturation: counters are 4-bit, the estimate caps at 15.
	for i := 0; i < 100; i++ {
		s.inc(hot)
	}
	if e := s.estimate(hot); e != 15 {
		t.Fatalf("estimate(hot) = %d, want saturated 15", e)
	}
}

func TestAdmissionSketchHalves(t *testing.T) {
	s := newAdmissionSketch(1) // sampleCap = 10: a halving is cheap to reach
	key := uint64(77)
	for i := 0; i < 9; i++ {
		s.inc(key)
	}
	before := s.estimate(key)
	if before < 9 {
		t.Fatalf("estimate = %d after 9 increments", before)
	}
	s.inc(key) // the 10th add spends the sample window
	if after := s.estimate(key); after >= before {
		t.Fatalf("estimate %d did not decay past the sample window (was %d)", after, before)
	}
	if s.adds.Load() >= s.sampleCap {
		t.Fatalf("halving did not reset the sample window: %d adds", s.adds.Load())
	}
}

// TestHotKeyCacheAdmissionProtectsWorkingSet is the unit-level
// adversarial mix: a recurring working set touched every round while a
// flood of unique one-shot keys pours in. With TinyLFU the working set
// stays resident (the flood loses every frequency comparison); with
// admission off, plain in-set LRU lets the flood churn it out.
func TestHotKeyCacheAdmissionProtectsWorkingSet(t *testing.T) {
	const (
		capacity = 64
		working  = 32
		floodPer = 128 // per round: ≥ hotWays per set on average
		rounds   = 50
	)
	// The working set spreads ≤ 2 keys per cache set: an overfull set
	// churns among its own working keys whatever the admission policy —
	// that is a capacity problem, not the one this test measures.
	cand := uint64(0)
	workingKeys := spreadKeys(t, working, capacity/hotWays, 2, func() uint64 {
		cand++
		return cand
	})

	run := func(admit bool) (hitRatio float64, rejects uint64) {
		c := newHotKeyCache(capacity, admit)
		next := uint64(1 << 20) // flood key source, disjoint from the working set
		hits, touches := 0, 0
		for r := 0; r < rounds; r++ {
			for _, k := range workingKeys {
				if _, _, ok := c.get(k); ok {
					hits++
				} else {
					c.put(k, uint16(k), true)
				}
				if r > 0 {
					touches++ // round 0 is the warm-up; misses there are free
				}
			}
			for i := 0; i < floodPer; i++ {
				c.put(next, 0, false)
				next++
			}
		}
		return float64(hits) / float64(touches), c.rejects.Load()
	}

	ratio, rejects := run(true)
	if ratio < 0.8 {
		t.Fatalf("admission on: working-set hit ratio %.2f, want ≥ 0.8", ratio)
	}
	if rejects == 0 {
		t.Fatal("admission on: the flood was never rejected")
	}
	ratio, rejects = run(false)
	if ratio > 0.5 {
		t.Fatalf("admission off: working-set hit ratio %.2f — the flood failed to churn the cache, the adversarial fixture is broken", ratio)
	}
	if rejects != 0 {
		t.Fatalf("admission off still rejected %d insertions", rejects)
	}
}

// TestClientAdmissionUnderScanFlood is the client-level adversarial
// mix, run with real servers and concurrent flooders (race coverage for
// the sketch's CAS paths against the seqlock read path): a hot
// direct-lookup working set keeps its cache residency under a flood of
// unique scan keys only when TinyLFU admission is on.
func TestClientAdmissionUnderScanFlood(t *testing.T) {
	res := fixtureTables(t)
	_, addr := startServer(t, fixtureBackend(t))

	// 64 present keys spread ≤ 2 per cache set (CacheKeys 256 → 64 sets)
	// so residency measures the admission policy, not set-overflow churn.
	lv := res.Level(res.MaxCost)
	li := 0
	hot := spreadKeys(t, 64, 256/hotWays, 2, func() uint64 {
		k := uint64(lv.At(li % lv.Len()))
		li++
		return k
	})

	run := func(policy AdmissionPolicy) (hitRatio float64, st_ func() cacheStatsLike) {
		cl := dialClient(t, addr, &ClientOptions{CacheKeys: 256, Admission: policy})
		ctx := context.Background()
		warm := func() uint64 { return cl.CacheStats().KeyHits }

		// Warm-up pass: the working set enters an empty cache.
		vals := make([]uint16, len(hot))
		found := make([]bool, len(hot))
		if err := cl.LookupBatch(ctx, hot, vals, found); err != nil {
			t.Fatal(err)
		}

		const rounds = 12
		hits, touches := uint64(0), uint64(0)
		floodNext := uint64(1) << 40
		for r := 0; r < rounds; r++ {
			// Two flooders push unique never-again keys concurrently while
			// a reader hammers the same sets with absent-key probes.
			var wg, readerWG sync.WaitGroup
			stop := make(chan struct{})
			readerWG.Add(1)
			go func() {
				defer readerWG.Done()
				rng := rand.New(rand.NewSource(int64(r)))
				for {
					select {
					case <-stop:
						return
					default:
						cl.kcache.get(rng.Uint64() | 1)
					}
				}
			}()
			for f := 0; f < 2; f++ {
				wg.Add(1)
				go func(f int) {
					defer wg.Done()
					keys := make([]uint64, 256)
					for i := range keys {
						keys[i] = floodNext + uint64(r*4096+f*2048+i)
					}
					if err := cl.LookupBatch(ctx, keys, make([]uint16, len(keys)), make([]bool, len(keys))); err != nil {
						t.Error(err)
					}
				}(f)
			}
			wg.Wait()
			close(stop)
			readerWG.Wait()

			before := warm()
			if err := cl.LookupBatch(ctx, hot, vals, found); err != nil {
				t.Fatal(err)
			}
			hits += warm() - before
			touches += uint64(len(hot))
		}
		return float64(hits) / float64(touches), func() cacheStatsLike {
			s := cl.CacheStats()
			return cacheStatsLike{rejects: s.AdmissionRejects, ratio: s.KeyHitRatio()}
		}
	}

	ratio, stats := run(AdmissionTinyLFU)
	st := stats()
	if ratio < 0.8 {
		t.Fatalf("admission on: working-set residency %.2f under scan flood, want ≥ 0.8", ratio)
	}
	if st.rejects == 0 {
		t.Fatal("admission on: no insertion was ever rejected")
	}
	if st.ratio <= 0 || st.ratio >= 1 {
		t.Fatalf("key hit ratio %v outside (0, 1)", st.ratio)
	}

	ratio, stats = run(AdmissionAll)
	if st = stats(); st.rejects != 0 {
		t.Fatalf("admission off still rejected %d insertions", st.rejects)
	}
	if ratio > 0.5 {
		t.Fatalf("admission off: working-set residency %.2f — the flood fixture no longer churns the cache", ratio)
	}
}

type cacheStatsLike struct {
	rejects uint64
	ratio   float64
}

// spreadKeys draws keys from gen until count keys land no more than
// maxPerSet into any of the cache's sets (the same hash the cache
// itself uses).
func spreadKeys(t *testing.T, count, sets, maxPerSet int, gen func() uint64) []uint64 {
	t.Helper()
	perSet := make(map[uint64]int, sets)
	var keys []uint64
	for tries := 0; len(keys) < count; tries++ {
		if tries > 100000 {
			t.Fatal("could not spread the working set over the cache sets")
		}
		k := gen()
		set := hashtab.Hash64Shift(k) & uint64(sets-1)
		if perSet[set] >= maxPerSet {
			continue
		}
		perSet[set]++
		keys = append(keys, k)
	}
	return keys
}
