package tablenet

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tables"
)

// ErrServerClosed reports Serve returning because Close was called.
var ErrServerClosed = errors.New("tablenet: server closed")

// DefaultMaxConns bounds simultaneous connections per server.
const DefaultMaxConns = 1024

// DefaultIdleTimeout drops connections that send no request for this
// long.
const DefaultIdleTimeout = 5 * time.Minute

// Server exports a tables.Backend over the tablenet protocol. One
// Server can serve any number of connections; each connection is
// request/response with per-connection scratch buffers, so the steady
// state allocates nothing per request beyond what the backend itself
// does.
type Server struct {
	backend tables.Backend
	// hello and helloDraining are the precomputed handshake pair; which
	// one a new connection receives is picked by a single atomic load of
	// draining, so a drain begun mid-accept is still announced
	// consistently.
	hello         []byte
	helloDraining []byte
	draining      atomic.Bool

	// MaxConns caps simultaneous connections (0: DefaultMaxConns);
	// IdleTimeout drops a connection that sends no request for the
	// duration (0: DefaultIdleTimeout, negative: never). Both bound what
	// an idle or hostile peer can pin — each connection holds ~128 KiB
	// of buffers and a goroutine. Set before Serve. Clients ride
	// through an idle drop transparently: their next request on the
	// stale socket is retried on a fresh dial.
	MaxConns    int
	IdleTimeout time.Duration

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup

	lookups   atomic.Uint64
	keys      atomic.Uint64
	hits      atomic.Uint64
	levelReqs atomic.Uint64
}

// NewServer wraps a backend (typically tables.Local over a memory-mapped
// store, or tables.Partial over a split store) as a protocol server. The
// backend must outlive the server. A backend implementing
// tables.RangeOwner has its owned range advertised in the hello; full
// stores advertise [0, tables.RangeSpace).
func NewServer(b tables.Backend) (*Server, error) {
	if b == nil {
		return nil, fmt.Errorf("tablenet: nil backend")
	}
	m := b.Meta()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	h := hello{Meta: m, RangeLo: 0, RangeHi: tables.RangeSpace}
	if ro, ok := b.(tables.RangeOwner); ok {
		h.RangeLo, h.RangeHi = ro.OwnedRange()
	}
	hd := h
	hd.Draining = true
	return &Server{
		backend:       b,
		hello:         encodeHello(h),
		helloDraining: encodeHello(hd),
		listeners:     make(map[net.Listener]struct{}),
		conns:         make(map[net.Conn]struct{}),
	}, nil
}

// Stats snapshots the serving counters, including the backing store's
// page-cache residency when the backend can report it.
func (s *Server) Stats() Stats {
	st := Stats{
		Lookups:   s.lookups.Load(),
		Keys:      s.keys.Load(),
		Hits:      s.hits.Load(),
		LevelReqs: s.levelReqs.Load(),
	}
	if rr, ok := s.backend.(tables.ResidencyReporter); ok {
		if res, mapped, ok := rr.Residency(); ok {
			st.ResidentBytes = uint64(res)
			st.MappedBytes = uint64(mapped)
		}
	}
	return st
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Serve accepts connections on l until Close (returning ErrServerClosed)
// or an accept error. Call from as many listeners as needed.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		maxConns := s.MaxConns
		if maxConns <= 0 {
			maxConns = DefaultMaxConns
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		if len(s.conns) >= maxConns {
			// Shed load at accept rather than queueing: the peer sees a
			// clean close and can retry another replica.
			s.mu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(c)
			s.mu.Lock()
			delete(s.conns, c)
			s.mu.Unlock()
		}()
	}
}

// Close stops all listeners, severs open connections, and waits for the
// connection handlers to return.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// Drain begins a graceful shutdown. The draining flag flips first — so
// every hello and ping from this moment on announces it — then the
// listeners close (no new connections) and every open connection's read
// deadline is yanked to now: a connection idle in its read fails
// immediately and closes, while one mid-request still writes its
// response (only reads are deadlined) and closes before reading another.
// No accepted request is dropped. Drain then waits for the connection
// handlers to finish, or for ctx to expire; either way the server is
// done accepting work and a subsequent Close is cheap.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.draining.Store(true)
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// connScratch is one connection's reusable workspace. out is the
// pooled whole-frame response buffer: header, opcode, and payload are
// laid out once and written with a single Write, so the steady state
// allocates nothing per request.
type connScratch struct {
	frame []byte
	resp  []byte
	out   []byte
	keys  []uint64
	vals  []uint16
	found []bool
	pos   []uint32
}

// serveConn speaks the protocol on one connection: hello first, then a
// request/response loop until EOF or a protocol violation (which is
// answered with an opErr frame before the connection drops).
func (s *Server) serveConn(c net.Conn) {
	defer c.Close()
	br := bufio.NewReaderSize(c, 1<<16)
	bw := bufio.NewWriterSize(c, 1<<16)
	h := s.hello
	if s.draining.Load() {
		h = s.helloDraining
	}
	if err := writeFrame(bw, opHello, h); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	idle := s.IdleTimeout
	if idle == 0 {
		idle = DefaultIdleTimeout
	}
	sc := &connScratch{frame: make([]byte, 4096)}
	for {
		// The deadline reset races with Drain's deadline-to-now nudge;
		// taking mu (which Drain holds while nudging) makes the two
		// orderings both safe: either this iteration sees draining and
		// returns, or Drain's nudge lands after the reset and the read
		// below fails immediately.
		s.mu.Lock()
		draining := s.draining.Load()
		if !draining && idle > 0 {
			c.SetReadDeadline(time.Now().Add(idle))
		}
		s.mu.Unlock()
		if draining {
			return // current request already answered; drain closes here
		}
		op, payload, err := readFrame(br, sc.frame)
		if err != nil {
			return // EOF, idle timeout, peer gone, or unframeable garbage
		}
		if cap(payload) > cap(sc.frame) {
			// Keep the grown buffer for the next large batch.
			sc.frame = payload[:cap(payload)]
		}
		respOp, resp, err := s.handleRequest(op, payload, sc)
		if err != nil {
			writeFrame(bw, opErr, []byte(err.Error()))
			bw.Flush()
			return
		}
		out, ferr := appendFrame(sc.out[:0], respOp, resp)
		sc.out = out[:0]
		if ferr != nil {
			return
		}
		if _, err := bw.Write(out); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// handleRequest dispatches one decoded request frame. It is
// transport-free so the fuzzer can drive it with raw frames; every
// length field is validated against the actual payload size before any
// allocation sized from it.
func (s *Server) handleRequest(op byte, payload []byte, sc *connScratch) (byte, []byte, error) {
	le := binary.LittleEndian
	switch op {
	case opPing:
		if len(payload) != 0 {
			return 0, nil, fmt.Errorf("%w: ping carries %d payload bytes", ErrProtocol, len(payload))
		}
		// The one-byte drain state lets pooled client connections learn
		// of a drain from their regular health probe without redialing
		// for a fresh hello.
		drain := byte(0)
		if s.draining.Load() {
			drain = 1
		}
		return opPingR, []byte{drain}, nil

	case opStats:
		if len(payload) != 0 {
			return 0, nil, fmt.Errorf("%w: stats carries %d payload bytes", ErrProtocol, len(payload))
		}
		return opStatsR, encodeStats(s.Stats()), nil

	case opLookup:
		if len(payload) < 4 {
			return 0, nil, fmt.Errorf("%w: short lookup request", ErrProtocol)
		}
		n := int(le.Uint32(payload))
		if n > maxLookupKeys || len(payload) != 4+8*n {
			return 0, nil, fmt.Errorf("%w: lookup declares %d keys in %d bytes", ErrProtocol, n, len(payload))
		}
		if cap(sc.keys) < n {
			sc.keys = make([]uint64, n)
			sc.vals = make([]uint16, n)
			sc.found = make([]bool, n)
		}
		keys, vals, found := sc.keys[:n], sc.vals[:n], sc.found[:n]
		for i := range keys {
			keys[i] = le.Uint64(payload[4+8*i:])
		}
		if err := s.backend.LookupBatch(context.Background(), keys, vals, found); err != nil {
			return 0, nil, fmt.Errorf("lookup failed: %w", err)
		}
		s.lookups.Add(1)
		s.keys.Add(uint64(n))
		respLen := 4 + 2*n + (n+7)/8
		if cap(sc.resp) < respLen {
			sc.resp = make([]byte, respLen)
		}
		resp := sc.resp[:respLen]
		le.PutUint32(resp, uint32(n))
		bitmap := resp[4+2*n:]
		for i := range bitmap {
			bitmap[i] = 0
		}
		hits := uint64(0)
		for i := 0; i < n; i++ {
			le.PutUint16(resp[4+2*i:], vals[i])
			if found[i] {
				bitmap[i/8] |= 1 << (i % 8)
				hits++
			}
		}
		s.hits.Add(hits)
		return opLookupR, resp, nil

	case opLevel:
		if len(payload) != 16 {
			return 0, nil, fmt.Errorf("%w: level request of %d bytes", ErrProtocol, len(payload))
		}
		cost := int(le.Uint32(payload))
		lo := le.Uint64(payload[4:])
		n := int(le.Uint32(payload[12:]))
		m := s.backend.Meta()
		if cost < 0 || cost > m.K {
			return 0, nil, fmt.Errorf("%w: level %d outside horizon %d", ErrProtocol, cost, m.K)
		}
		if n > maxLevelKeys || lo > uint64(m.LevelCounts[cost]) || uint64(n) > uint64(m.LevelCounts[cost])-lo {
			return 0, nil, fmt.Errorf("%w: level %d range [%d, %d) outside its %d entries", ErrProtocol, cost, lo, lo+uint64(n), m.LevelCounts[cost])
		}
		if cap(sc.keys) < n {
			sc.keys = make([]uint64, n)
			sc.vals = make([]uint16, n)
			sc.found = make([]bool, n)
		}
		keys := sc.keys[:n]
		if err := s.backend.LevelKeys(context.Background(), cost, int(lo), keys); err != nil {
			return 0, nil, fmt.Errorf("level fetch failed: %w", err)
		}
		s.levelReqs.Add(1)
		respLen := 4 + 8*n
		if cap(sc.resp) < respLen {
			sc.resp = make([]byte, respLen)
		}
		resp := sc.resp[:respLen]
		le.PutUint32(resp, uint32(n))
		for i, k := range keys {
			le.PutUint64(resp[4+8*i:], k)
		}
		return opLevelR, resp, nil

	case opLevelSparse:
		cost, lo, n, filterLo, filterHi, err := parseSparseReq(payload)
		if err != nil {
			return 0, nil, err
		}
		m := s.backend.Meta()
		if cost > m.K {
			return 0, nil, fmt.Errorf("%w: level %d outside horizon %d", ErrProtocol, cost, m.K)
		}
		if lo > m.LevelCounts[cost] || n > m.LevelCounts[cost]-lo {
			return 0, nil, fmt.Errorf("%w: sparse level %d window [%d, %d) outside its %d entries", ErrProtocol, cost, lo, lo+n, m.LevelCounts[cost])
		}
		if cap(sc.keys) < n {
			sc.keys = make([]uint64, n)
			sc.vals = make([]uint16, n)
			sc.found = make([]bool, n)
		}
		if cap(sc.pos) < n {
			sc.pos = make([]uint32, n)
		}
		cnt, err := tables.SparseLevelKeys(context.Background(), s.backend, cost, lo, n, filterLo, filterHi, sc.pos[:n], sc.keys[:n])
		if err != nil {
			return 0, nil, fmt.Errorf("sparse level fetch failed: %w", err)
		}
		s.levelReqs.Add(1)
		respLen := 4 + 12*cnt
		if cap(sc.resp) < respLen {
			sc.resp = make([]byte, respLen)
		}
		resp := sc.resp[:respLen]
		le.PutUint32(resp, uint32(cnt))
		for i := 0; i < cnt; i++ {
			le.PutUint32(resp[4+12*i:], sc.pos[i])
			le.PutUint64(resp[8+12*i:], sc.keys[i])
		}
		return opLevelSparseR, resp, nil

	default:
		return 0, nil, fmt.Errorf("%w: unknown opcode %#x", ErrProtocol, op)
	}
}
