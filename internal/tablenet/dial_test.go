package tablenet

import (
	"net"
	"testing"
	"time"
)

// TestDialTimeoutCoversHandshake proves DialTimeout bounds dial and
// hello-read together. The bug it guards: dialConn used to arm a fresh
// full DialTimeout read deadline after the TCP dial had already spent
// part of the budget, stretching the worst case to ~2× the documented
// bound. Dial latency is injected through the dialTCP seam because a
// loopback connect is instantaneous.
func TestDialTimeoutCoversHandshake(t *testing.T) {
	// A listener that accepts and then stays silent: the hello read can
	// only end by deadline.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	const (
		budget    = 300 * time.Millisecond
		dialSpend = 200 * time.Millisecond
	)
	orig := dialTCP
	dialTCP = func(addr string, deadline time.Time) (net.Conn, error) {
		time.Sleep(dialSpend)
		return orig(addr, deadline)
	}
	defer func() { dialTCP = orig }()

	start := time.Now()
	_, err = Dial(l.Addr().String(), &ClientOptions{DialTimeout: budget})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Dial against a silent server succeeded")
	}
	// Fixed behavior completes in ~budget; the old bug took
	// dialSpend + budget (≥ 500ms here). Allow scheduling slack.
	if elapsed > budget+150*time.Millisecond {
		t.Fatalf("Dial took %v: DialTimeout=%v must bound dial+hello together, not each separately", elapsed, budget)
	}
	if elapsed < dialSpend {
		t.Fatalf("Dial returned in %v, before the injected dial latency %v", elapsed, dialSpend)
	}
}
