package tablenet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/bfs"
	"repro/internal/canon"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/perm"
	"repro/internal/tables"
)

// The fixture table set is built once per test binary (k = 4: ≈7000
// classes, milliseconds): deep enough that the meet-in-the-middle stage
// and both direct branches are exercised, small enough that every test
// can spin up fresh servers over it.
var (
	fixtureOnce sync.Once
	fixtureRes  *bfs.Result
	fixtureErr  error
)

func fixtureTables(t testing.TB) *bfs.Result {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureRes, fixtureErr = bfs.Search(bfs.GateAlphabet(), 4, nil)
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureRes
}

func fixtureBackend(t testing.TB) *tables.Local {
	t.Helper()
	b, err := tables.NewLocal(fixtureTables(t))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// startServer serves the fixture backend on a loopback listener and
// returns its address; the server is torn down with the test.
func startServer(t testing.TB, b tables.Backend) (*Server, string) {
	t.Helper()
	srv, err := NewServer(b)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return srv, l.Addr().String()
}

func dialClient(t testing.TB, addr string, opts *ClientOptions) *Client {
	t.Helper()
	cl, err := Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func randomCircuitPerm(rng *rand.Rand, n int) perm.Perm {
	c := make(circuit.Circuit, n)
	for i := range c {
		c[i] = gate.FromIndex(rng.Intn(gate.Count))
	}
	return c.Perm()
}

func randomPerm16(rng *rand.Rand) perm.Perm {
	p, err := perm.FromSlice(rng.Perm(16))
	if err != nil {
		panic(err)
	}
	return p
}

func TestHandshakeMeta(t *testing.T) {
	local := fixtureBackend(t)
	_, addr := startServer(t, local)
	cl := dialClient(t, addr, nil)
	got, want := cl.Meta(), local.Meta()
	if !got.Compatible(want) {
		t.Fatalf("handshake meta %+v incompatible with local %+v", got, want)
	}
	if got.Source != fmt.Sprintf("tablenet(%s)", addr) {
		t.Fatalf("meta source = %q", got.Source)
	}
	if err := cl.Ping(context.Background()); err != nil {
		t.Fatalf("ping: %v", err)
	}
}

func TestClientMatchesLocalReads(t *testing.T) {
	res := fixtureTables(t)
	local := fixtureBackend(t)
	_, addr := startServer(t, local)
	cl := dialClient(t, addr, nil)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))

	// Present keys (level members) interleaved with absent ones.
	var keys []uint64
	for c := 0; c <= res.MaxCost; c++ {
		lv := res.Level(c)
		for i := 0; i < lv.Len(); i += 1 + rng.Intn(64) {
			keys = append(keys, uint64(lv.At(i)))
		}
	}
	for i := 0; i < 200; i++ {
		keys = append(keys, uint64(randomPerm16(rng)))
	}
	gotVals := make([]uint16, len(keys))
	gotOK := make([]bool, len(keys))
	if err := cl.LookupBatch(ctx, keys, gotVals, gotOK); err != nil {
		t.Fatal(err)
	}
	wantVals := make([]uint16, len(keys))
	wantOK := make([]bool, len(keys))
	if err := local.LookupBatch(ctx, keys, wantVals, wantOK); err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if gotOK[i] != wantOK[i] || (gotOK[i] && gotVals[i] != wantVals[i]) {
			t.Fatalf("key %#x: remote (%v, %v) != local (%v, %v)", keys[i], gotVals[i], gotOK[i], wantVals[i], wantOK[i])
		}
	}

	// Level ranges, including ones spanning request-chunk boundaries.
	for c := 0; c <= res.MaxCost; c++ {
		n := res.LevelLen(c)
		lo := 0
		if n > 3 {
			lo = rng.Intn(n / 2)
		}
		want := make([]uint64, n-lo)
		got := make([]uint64, n-lo)
		if err := local.LevelKeys(ctx, c, lo, want); err != nil {
			t.Fatal(err)
		}
		if err := cl.LevelKeys(ctx, c, lo, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("level %d key %d: remote %#x != local %#x", c, lo+i, got[i], want[i])
			}
		}
	}

	st, err := cl.ServerStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Lookups == 0 || st.Keys < uint64(len(keys)) || st.Hits == 0 || st.LevelReqs == 0 {
		t.Fatalf("server stats did not count the traffic: %+v", st)
	}
}

func TestClientRejectsOutOfRangeRequests(t *testing.T) {
	local := fixtureBackend(t)
	_, addr := startServer(t, local)
	cl := dialClient(t, addr, nil)
	ctx := context.Background()
	out := make([]uint64, 8)
	if err := cl.LevelKeys(ctx, cl.Meta().K+1, 0, out); err == nil {
		t.Fatal("level beyond horizon accepted")
	}
	if err := cl.LevelKeys(ctx, 0, 0, make([]uint64, cl.Meta().LevelCounts[0]+1)); err == nil {
		t.Fatal("level overrun accepted")
	}
	if err := cl.LookupBatch(ctx, make([]uint64, 3), make([]uint16, 2), make([]bool, 3)); err == nil {
		t.Fatal("mismatched slice lengths accepted")
	}
}

// TestRemoteCoreMatchesLocal drives the full query engine through a
// single network backend and requires byte-identical answers to the
// local engine: same circuits, same costs, same error taxonomy.
func TestRemoteCoreMatchesLocal(t *testing.T) {
	res := fixtureTables(t)
	_, addr := startServer(t, fixtureBackend(t))
	cl := dialClient(t, addr, nil)

	localSynth, err := core.FromResult(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	localSynth.SetWorkers(1)
	remoteSynth, err := core.FromBackend(cl, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if remoteSynth.Result() != nil {
		t.Fatal("remote synthesizer claims local tables")
	}
	if remoteSynth.K() != localSynth.K() || remoteSynth.Horizon() != localSynth.Horizon() {
		t.Fatalf("geometry mismatch: remote k=%d h=%d, local k=%d h=%d",
			remoteSynth.K(), remoteSynth.Horizon(), localSynth.K(), localSynth.Horizon())
	}

	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	checked := 0
	for i := 0; i < 120; i++ {
		var f perm.Perm
		switch {
		case i%6 == 5:
			f = randomPerm16(rng) // usually beyond the k=4 horizon
		default:
			f = randomCircuitPerm(rng, 1+rng.Intn(8))
		}
		wantC, wantInfo, wantErr := localSynth.SynthesizeInfoCtx(ctx, f)
		gotC, gotInfo, gotErr := remoteSynth.SynthesizeInfoCtx(ctx, f)
		if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && !errors.Is(gotErr, core.ErrBeyondHorizon)) {
			t.Fatalf("spec %v: local err %v, remote err %v", f, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if wantInfo.Cost != gotInfo.Cost || wantInfo.Direct != gotInfo.Direct || wantInfo.SplitPrefix != gotInfo.SplitPrefix {
			t.Fatalf("spec %v: local info %+v, remote info %+v", f, wantInfo, gotInfo)
		}
		if wantC.String() != gotC.String() {
			t.Fatalf("spec %v: local circuit %v != remote circuit %v", f, wantC, gotC)
		}
		checked++
	}
	if checked < 80 {
		t.Fatalf("only %d specs compared", checked)
	}
}

// TestWeightedRemoteMatchesLocal locks the byte-identical guarantee for
// weighted alphabets, where the scan does NOT stop at the first hit:
// the local probeClass commits to the first hitting variant of each
// representative, and the batched remote scan must replicate exactly
// that choice (not pick a better variant from the same representative's
// speculatively-batched candidates).
func TestWeightedRemoteMatchesLocal(t *testing.T) {
	alphabet, err := bfs.WeightedGateAlphabet(gate.Gate.QuantumCost)
	if err != nil {
		t.Fatal(err)
	}
	res, err := bfs.Search(alphabet, 8, nil) // ≈8000 classes, milliseconds
	if err != nil {
		t.Fatal(err)
	}
	local, err := tables.NewLocal(res)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, local)
	cl := dialClient(t, addr, nil)

	localSynth, err := core.FromResult(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	localSynth.SetWorkers(1)
	remoteSynth, err := core.FromBackend(cl, alphabet, 0)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(21))
	ctx := context.Background()
	hits, mitm := 0, 0
	for i := 0; i < 60; i++ {
		// Circuits biased to the weighted alphabet's cheap gates (NCV
		// cost ≤ 5, i.e. no TOF4) so many specs land inside the direct
		// window and the meet-in-the-middle window just beyond it.
		n := 2 + rng.Intn(10)
		c := make(circuit.Circuit, n)
		for j := range c {
			g := gate.FromIndex(rng.Intn(gate.Count))
			for g.QuantumCost() > 5 {
				g = gate.FromIndex(rng.Intn(gate.Count))
			}
			c[j] = g
		}
		f := c.Perm()
		wantC, wantInfo, wantErr := localSynth.SynthesizeInfoCtx(ctx, f)
		gotC, gotInfo, gotErr := remoteSynth.SynthesizeInfoCtx(ctx, f)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("spec %v: local err %v, remote err %v", f, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if wantC.String() != gotC.String() || wantInfo != gotInfo {
			t.Fatalf("spec %v:\n  local  %+v %v\n  remote %+v %v", f, wantInfo, wantC, gotInfo, gotC)
		}
		hits++
		if !wantInfo.Direct {
			mitm++
		}
	}
	if hits < 20 || mitm < 8 {
		t.Fatalf("weak coverage: %d answered, %d via meet-in-the-middle", hits, mitm)
	}
}

// TestRouterIdenticalToLocal is the PR's acceptance gate: a router over
// 2 shard backends, hammered by 8 concurrent clients, must return
// byte-identical circuits to a single local backend for ≥ 100 random
// specifications. Run under -race this also proves the router's scatter
// path and the per-connection server state are data-race free.
func TestRouterIdenticalToLocal(t *testing.T) {
	res := fixtureTables(t)
	_, addr1 := startServer(t, fixtureBackend(t))
	_, addr2 := startServer(t, fixtureBackend(t))
	cl1 := dialClient(t, addr1, &ClientOptions{Conns: 8})
	cl2 := dialClient(t, addr2, &ClientOptions{Conns: 8})
	router, err := NewRouter([]tables.Backend{cl1, cl2})
	if err != nil {
		t.Fatal(err)
	}
	if got := router.Meta().Source; got != "router(2)" {
		t.Fatalf("router source = %q", got)
	}

	localSynth, err := core.FromResult(res, 0)
	if err != nil {
		t.Fatal(err)
	}
	localSynth.SetWorkers(1)
	routed, err := core.FromBackend(router, nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 8
	const perClient = 16 // 128 specs total ≥ 100
	type answer struct {
		spec    perm.Perm
		circuit string
		cost    int
		err     error
	}
	results := make([][]answer, clients)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			ctx := context.Background()
			for i := 0; i < perClient; i++ {
				var f perm.Perm
				if i%5 == 4 {
					f = randomPerm16(rng)
				} else {
					f = randomCircuitPerm(rng, 1+rng.Intn(8))
				}
				c, info, err := routed.SynthesizeInfoCtx(ctx, f)
				a := answer{spec: f, cost: info.Cost, err: err}
				if err == nil {
					a.circuit = c.String()
				}
				results[w] = append(results[w], a)
			}
		}(w)
	}
	wg.Wait()

	checked := 0
	for _, rs := range results {
		for _, a := range rs {
			wantC, wantInfo, wantErr := localSynth.SynthesizeInfoCtx(context.Background(), a.spec)
			if (wantErr == nil) != (a.err == nil) {
				t.Fatalf("spec %v: local err %v, routed err %v", a.spec, wantErr, a.err)
			}
			if wantErr != nil {
				continue
			}
			if a.circuit != wantC.String() || a.cost != wantInfo.Cost {
				t.Fatalf("spec %v: routed (%s, %d) != local (%s, %d)",
					a.spec, a.circuit, a.cost, wantC, wantInfo.Cost)
			}
			// Re-verify the circuit actually computes the spec.
			cc, err := circuit.Parse(a.circuit)
			if err != nil || cc.Perm() != a.spec {
				t.Fatalf("spec %v: routed circuit %q does not compute it (%v)", a.spec, a.circuit, err)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d specs survived to comparison, want ≥ 100", checked)
	}

	// Both shards must have carried real lookup traffic: the hash
	// partition sends each key batch where it belongs.
	st1, err := cl1.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st2, err := cl2.ServerStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st1.Keys == 0 || st2.Keys == 0 {
		t.Fatalf("lopsided shard traffic: shard1 %+v, shard2 %+v", st1, st2)
	}
}

func TestRouterPartitionCoversSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 3, 5, 8} {
		counts := make([]int, n)
		for i := 0; i < 100000; i++ {
			s := ShardOf(rng.Uint64(), n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf out of range: %d of %d", s, n)
			}
			counts[s]++
		}
		for s, c := range counts {
			if c < 100000/n/2 {
				t.Fatalf("n=%d shard %d got %d of 100000 keys (badly skewed)", n, s, c)
			}
		}
	}
}

func TestRouterRejectsMixedGenerations(t *testing.T) {
	resA := fixtureTables(t)
	resB, err := bfs.Search(bfs.GateAlphabet(), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := tables.NewLocal(resA)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := tables.NewLocal(resB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter([]tables.Backend{ba, bb}); err == nil {
		t.Fatal("router accepted shards serving different table sets")
	}
}

// TestRouterDegradedShard verifies the health surface and read
// failover: with one of two shards down, Check reports exactly which,
// level reads keep succeeding off the surviving replica, and lookups
// owned by the dead shard fail rather than silently missing.
func TestRouterDegradedShard(t *testing.T) {
	res := fixtureTables(t)
	srv1, addr1 := startServer(t, fixtureBackend(t))
	_, addr2 := startServer(t, fixtureBackend(t))
	cl1 := dialClient(t, addr1, nil)
	cl2 := dialClient(t, addr2, nil)
	router, err := NewRouter([]tables.Backend{cl1, cl2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, st := range router.Check(ctx) {
		if st.Err != nil {
			t.Fatalf("healthy fleet reports %s: %v", st.Addr, st.Err)
		}
	}

	srv1.Close() // shard 1 goes dark

	checkCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	statuses := router.Check(checkCtx)
	if statuses[0].Err == nil {
		t.Fatal("dead shard reported healthy")
	}
	if statuses[1].Err != nil {
		t.Fatalf("live shard reported unhealthy: %v", statuses[1].Err)
	}
	if statuses[0].Addr != addr1 || statuses[1].Addr != addr2 {
		t.Fatalf("shard addresses mangled: %+v", statuses)
	}

	// Level reads fail over to the live replica...
	out := make([]uint64, res.LevelLen(1))
	for i := 0; i < 4; i++ { // hit both round-robin start points
		lvCtx, lvCancel := context.WithTimeout(ctx, 2*time.Second)
		err := router.LevelKeys(lvCtx, 1, 0, out)
		lvCancel()
		if err != nil {
			t.Fatalf("level read did not fail over: %v", err)
		}
	}

	// ...while a batch spanning both partitions errors (half its owners
	// are gone — a loud failure, never a silent miss).
	keys := make([]uint64, 256)
	rng := rand.New(rand.NewSource(9))
	for i := range keys {
		keys[i] = uint64(randomPerm16(rng))
	}
	lbCtx, lbCancel := context.WithTimeout(ctx, 2*time.Second)
	defer lbCancel()
	if err := router.LookupBatch(lbCtx, keys, make([]uint16, len(keys)), make([]bool, len(keys))); err == nil {
		t.Fatal("lookup batch spanning a dead shard reported success")
	}
}

// TestServerRejectsMalformedFrames drives raw hostile bytes at a live
// server and expects an error frame (or a clean drop), never a hang or
// a crash.
func TestServerRejectsMalformedFrames(t *testing.T) {
	_, addr := startServer(t, fixtureBackend(t))
	// frame builds a well-formed v2 frame (length + checksum header)
	// around a hostile body.
	frame := func(op byte, payload []byte) []byte {
		f, err := appendFrame(nil, op, payload)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	// badsum is a valid ping frame with its checksum flipped.
	badsum := frame(opPing, nil)
	badsum[4] ^= 0xFF
	cases := [][]byte{
		{0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00, 0x00}, // absurd frame length
		{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}, // zero frame length
		badsum,                      // checksum mismatch
		frame(0xEE, nil),            // unknown opcode
		frame(opPing, []byte{0x01}), // ping with payload
		frame(opLookup, []byte{255, 255, 255, 255}), // lying key count
	}
	for i, raw := range cases {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		c.SetDeadline(time.Now().Add(5 * time.Second))
		// Swallow the hello first.
		if _, _, err := readFrame(c, nil); err != nil {
			t.Fatalf("case %d: hello: %v", i, err)
		}
		if _, err := c.Write(raw); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		op, payload, err := readFrame(c, nil)
		if err == nil && op != opErr {
			t.Fatalf("case %d: server answered %#x %q to garbage", i, op, payload)
		}
		c.Close()
	}
}

// TestServerConnLimits: the shard server sheds connections beyond
// MaxConns at accept and drops idle ones after IdleTimeout — and a
// client whose pooled connection was idle-dropped rides through on the
// retry path.
func TestServerConnLimits(t *testing.T) {
	local := fixtureBackend(t)
	srv, err := NewServer(local)
	if err != nil {
		t.Fatal(err)
	}
	srv.MaxConns = 1
	srv.IdleTimeout = 200 * time.Millisecond
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	addr := l.Addr().String()

	cl := dialClient(t, addr, &ClientOptions{Conns: 1})
	if err := cl.Ping(context.Background()); err != nil {
		t.Fatalf("first connection: %v", err)
	}
	// A second simultaneous connection is shed at accept (closed before
	// any hello), so a dial fails its handshake.
	if _, err := Dial(addr, &ClientOptions{Conns: 1, DialTimeout: 2 * time.Second}); err == nil {
		t.Fatal("connection beyond MaxConns was accepted")
	}
	// Let the pooled connection idle past the server's timeout; the next
	// request hits a dead socket and must transparently redial (the
	// server has a slot free again by then).
	time.Sleep(600 * time.Millisecond)
	pingCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cl.Ping(pingCtx); err != nil {
		t.Fatalf("request after idle drop was not retried: %v", err)
	}
}

// TestClientSurvivesServerRestart: after a shard server restarts, the
// pool's stale sockets must not surface as query failures — a transport
// error on a pooled connection is retried once on a fresh dial.
func TestClientSurvivesServerRestart(t *testing.T) {
	local := fixtureBackend(t)
	srv1, err := NewServer(local)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	go srv1.Serve(l)

	cl := dialClient(t, addr, &ClientOptions{Conns: 2})
	ctx := context.Background()
	keys := []uint64{uint64(fixtureTables(t).Level(1).At(0))}
	vals := make([]uint16, 1)
	found := make([]bool, 1)
	if err := cl.LookupBatch(ctx, keys, vals, found); err != nil || !found[0] {
		t.Fatalf("warm-up lookup: %v (found %v)", err, found[0])
	}

	// Restart the server on the same address: the pooled connection from
	// the warm-up is now a dead socket.
	srv1.Close()
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := NewServer(local)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve(l2)
	t.Cleanup(func() { srv2.Close() })

	lbCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := cl.LookupBatch(lbCtx, keys, vals, found); err != nil || !found[0] {
		t.Fatalf("lookup after server restart was not retried on a fresh dial: %v (found %v)", err, found[0])
	}
}

// TestClientCancellationInterruptsStall: a shard that accepts,
// handshakes, then goes silent must not pin a request past its
// context's cancellation — plain cancel, no deadline.
func TestClientCancellationInterruptsStall(t *testing.T) {
	helloBytes := encodeHello(hello{Meta: fixtureBackend(t).Meta(), RangeLo: 0, RangeHi: tables.RangeSpace})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			writeFrame(c, opHello, helloBytes)
			// ...and never answer anything again.
		}
	}()
	cl, err := Dial(l.Addr().String(), &ClientOptions{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err = cl.LookupBatch(ctx, []uint64{1}, make([]uint16, 1), make([]bool, 1))
	if err == nil {
		t.Fatal("lookup against a stalled server succeeded")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("cancellation took %v to interrupt the stalled round trip", waited)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	lo, hi := tables.RangeOf(1, 2)
	want := hello{Meta: fixtureBackend(t).Meta(), RangeLo: lo, RangeHi: hi, Draining: true}
	got, err := parseHello(encodeHello(want))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Meta.Compatible(want.Meta) {
		t.Fatalf("hello round trip: %+v != %+v", got.Meta, want.Meta)
	}
	if got.RangeLo != lo || got.RangeHi != hi || !got.Draining {
		t.Fatalf("hello round trip dropped serving state: %+v", got)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := Stats{Lookups: 1, Keys: 2, Hits: 3, LevelReqs: 4, ResidentBytes: 5, MappedBytes: 6}
	got, err := parseStats(encodeStats(want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("stats round trip: %+v != %+v", got, want)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello, shard")
	if err := writeFrame(&buf, opPing, payload); err != nil {
		t.Fatal(err)
	}
	op, got, err := readFrame(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if op != opPing || !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: op %#x payload %q", op, got)
	}
}

// TestCanonKeyOwnership sanity-checks that the partition function is
// applied to the canonical keys the table actually stores: every stored
// representative must route to the shard its Wang hash names, matching
// the in-process sharding.
func TestCanonKeyOwnership(t *testing.T) {
	res := fixtureTables(t)
	lv := res.Level(res.MaxCost)
	for i := 0; i < min(lv.Len(), 1000); i++ {
		rep := lv.At(i)
		if canon.Rep(rep) != rep {
			t.Fatalf("level entry %v is not canonical", rep)
		}
		if s := ShardOf(uint64(rep), 2); s < 0 || s > 1 {
			t.Fatalf("ShardOf(%v, 2) = %d", rep, s)
		}
	}
}
