package tablenet

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/tables"
)

// FuzzReadFrame throws arbitrary byte streams at the frame reader: a
// forged length must produce an error, never an allocation proportional
// to the lie (the reader caps before allocating, mirroring tablesio's
// forged-header guards).
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	var ok bytes.Buffer
	writeFrame(&ok, opPing, nil)
	f.Add(ok.Bytes())
	var big bytes.Buffer
	writeFrame(&big, opLookup, make([]byte, 4096))
	f.Add(big.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		op, payload, err := readFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		if 1+len(payload) > maxFrameLen {
			t.Fatalf("accepted frame of %d bytes (op %#x) above the cap", 1+len(payload), op)
		}
	})
}

// FuzzParseHello attacks the handshake decoder with mutated hellos: it
// must either reject or yield a Meta that passes validation and an owned
// range inside the hash space — an inconsistent Meta reaching the query
// engine would misdirect every later read, and an accepted implausible
// range claim would corrupt the router's ownership verification.
func FuzzParseHello(f *testing.F) {
	seed := hello{
		Meta: tables.Meta{
			K:           3,
			Reduced:     true,
			Entries:     4,
			LevelCounts: []int{1, 1, 1, 1},
			Fingerprint: tables.Fingerprint{Elements: 32, MaxCost: 1, XorPerms: 7, SumCosts: 32},
		},
		RangeLo: 0,
		RangeHi: tables.RangeSpace,
	}
	f.Add(encodeHello(seed))
	f.Add([]byte{})
	f.Add([]byte{protoVersion})
	mutated := encodeHello(seed)
	binary.LittleEndian.PutUint32(mutated[5:], 1<<30) // absurd horizon
	f.Add(mutated)
	truncated := encodeHello(seed)
	f.Add(truncated[:len(truncated)-3])
	// The v3 fields: a draining split shard, an inverted range, and a
	// range claim past the end of the hash space.
	split := seed
	split.RangeLo, split.RangeHi = tables.RangeOf(2, 4)
	split.Draining = true
	f.Add(encodeHello(split))
	inverted := encodeHello(seed)
	binary.LittleEndian.PutUint64(inverted[41:], tables.RangeSpace)
	binary.LittleEndian.PutUint64(inverted[49:], 0)
	f.Add(inverted)
	beyond := encodeHello(seed)
	binary.LittleEndian.PutUint64(beyond[49:], tables.RangeSpace+1)
	f.Add(beyond)
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := parseHello(data)
		if err != nil {
			return
		}
		if verr := h.Meta.Validate(); verr != nil {
			t.Fatalf("parseHello accepted an invalid meta %+v: %v", h.Meta, verr)
		}
		if h.RangeLo >= h.RangeHi || h.RangeHi > tables.RangeSpace {
			t.Fatalf("parseHello accepted implausible range [%#x, %#x)", h.RangeLo, h.RangeHi)
		}
		// Round-trip stability: re-encoding a valid parse must re-parse
		// compatible, with the serving state preserved bit-for-bit.
		h2, err := parseHello(encodeHello(h))
		if err != nil || !h.Meta.Compatible(h2.Meta) {
			t.Fatalf("hello round trip diverged: %+v vs %+v (%v)", h, h2, err)
		}
		if h2.RangeLo != h.RangeLo || h2.RangeHi != h.RangeHi || h2.Draining != h.Draining {
			t.Fatalf("hello round trip dropped serving state: %+v vs %+v", h, h2)
		}
	})
}

// FuzzHandleRequest drives the server's request dispatcher with raw
// opcodes and payloads over the real fixture backend: malformed frames,
// truncated bodies, and forged counts must all error without panicking,
// and every accepted response must decode under the protocol's own
// shape rules.
func FuzzHandleRequest(f *testing.F) {
	res := fixtureTables(f)
	local, err := tables.NewLocal(res)
	if err != nil {
		f.Fatal(err)
	}
	srv, err := NewServer(local)
	if err != nil {
		f.Fatal(err)
	}
	le := binary.LittleEndian

	f.Add([]byte{opPing})
	f.Add([]byte{opStats})
	lookup := make([]byte, 1+4+8)
	lookup[0] = opLookup
	le.PutUint32(lookup[1:], 1)
	le.PutUint64(lookup[5:], 1)
	f.Add(lookup)
	lying := make([]byte, 1+4)
	lying[0] = opLookup
	le.PutUint32(lying[1:], 0xFFFFFFFF) // claims 4G keys, carries none
	f.Add(lying)
	level := make([]byte, 1+16)
	level[0] = opLevel
	le.PutUint32(level[1:], 1)
	le.PutUint32(level[13:], 2)
	f.Add(level)
	levelLying := make([]byte, 1+16)
	levelLying[0] = opLevel
	le.PutUint32(levelLying[1:], 2)
	le.PutUint64(levelLying[5:], 1<<40) // offset far past the level
	le.PutUint32(levelLying[13:], 0xFFFF)
	f.Add(levelLying)
	sparse := make([]byte, 1+sparseReqLen)
	sparse[0] = opLevelSparse
	le.PutUint32(sparse[1:], 1)
	le.PutUint32(sparse[13:], 2)
	le.PutUint64(sparse[17:], 0)
	le.PutUint64(sparse[25:], tables.RangeSpace)
	f.Add(sparse)
	sparseLying := make([]byte, 1+sparseReqLen)
	sparseLying[0] = opLevelSparse
	le.PutUint32(sparseLying[1:], 1)
	le.PutUint32(sparseLying[13:], 0xFFFF) // window far past the level
	le.PutUint64(sparseLying[17:], 1<<40)  // filter outside the space
	le.PutUint64(sparseLying[25:], 1<<41)
	f.Add(sparseLying)

	f.Fuzz(func(t *testing.T, frame []byte) {
		if len(frame) == 0 {
			return
		}
		sc := &connScratch{}
		op, resp, err := srv.handleRequest(frame[0], frame[1:], sc)
		if err != nil {
			return
		}
		switch frame[0] {
		case opPing:
			if op != opPingR || len(resp) != 1 {
				t.Fatalf("ping answered (%#x, %d bytes)", op, len(resp))
			}
		case opStats:
			if op != opStatsR {
				t.Fatalf("stats answered %#x", op)
			}
			if _, perr := parseStats(resp); perr != nil {
				t.Fatalf("stats response does not parse: %v", perr)
			}
		case opLookup:
			n := int(le.Uint32(frame[1:]))
			if op != opLookupR || len(resp) != 4+2*n+(n+7)/8 {
				t.Fatalf("lookup response shape: op %#x, %d bytes for %d keys", op, len(resp), n)
			}
		case opLevel:
			n := int(le.Uint32(frame[13:]))
			if op != opLevelR || len(resp) != 4+8*n {
				t.Fatalf("level response shape: op %#x, %d bytes for %d keys", op, len(resp), n)
			}
		case opLevelSparse:
			n := int(le.Uint32(frame[13:]))
			if op != opLevelSparseR || len(resp) < 4 {
				t.Fatalf("sparse level response shape: op %#x, %d bytes", op, len(resp))
			}
			cnt := int(le.Uint32(resp))
			if cnt > n || len(resp) != 4+12*cnt {
				t.Fatalf("sparse level response: %d pairs in %d bytes for window %d", cnt, len(resp), n)
			}
		default:
			t.Fatalf("unknown opcode %#x was accepted", frame[0])
		}
	})
}
