package benchfuncs

import (
	"testing"

	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/rmpoly"
)

func TestSuiteCensus(t *testing.T) {
	if len(All()) != 13 {
		t.Fatalf("suite has %d benchmarks, want 13 (paper Table 6)", len(All()))
	}
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if !b.Spec.IsValid() {
			t.Fatalf("%s: invalid specification", b.Name)
		}
		if b.OptimalSize < 0 {
			t.Fatalf("%s: missing optimal size", b.Name)
		}
	}
}

// TestPublishedCircuitsImplementSpecs validates every Table 6 circuit
// against its specification — twelve verbatim, oc8 via the documented
// unique single-gate repair.
func TestPublishedCircuitsImplementSpecs(t *testing.T) {
	for _, b := range All() {
		if b.Name == "oc8" {
			if b.CircuitMatchesSpec() {
				t.Errorf("oc8's truncated circuit unexpectedly matches; repair obsolete")
			}
			if len(b.PaperCircuit) != 11 {
				t.Errorf("oc8 verbatim circuit has %d gates, expected the paper's 11", len(b.PaperCircuit))
			}
		} else {
			if !b.CircuitMatchesSpec() {
				t.Errorf("%s: published circuit computes %v, spec is %v",
					b.Name, b.PaperCircuit.Perm(), b.Spec)
			}
			if b.RepairedCircuit != nil {
				t.Errorf("%s: unexpected repaired circuit", b.Name)
			}
		}
		v := b.VerifiedCircuit()
		if v.Perm() != b.Spec {
			t.Errorf("%s: verified circuit does not implement spec", b.Name)
		}
		if len(v) != b.OptimalSize {
			t.Errorf("%s: verified circuit has %d gates, SOC is %d", b.Name, len(v), b.OptimalSize)
		}
	}
}

func TestByName(t *testing.T) {
	b, ok := ByName("hwb4")
	if !ok || b.OptimalSize != 11 {
		t.Fatalf("ByName(hwb4) = %+v, %v", b, ok)
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
}

func TestBestKnownNeverBeatsOptimal(t *testing.T) {
	// Prior art can only be ≥ the proved optimum; the paper improved 5 of
	// 13 benchmarks (decode42, oc5, oc6, oc7, oc8).
	improved := 0
	for _, b := range All() {
		if b.BestKnownSize < 0 {
			continue
		}
		if b.BestKnownSize < b.OptimalSize {
			t.Errorf("%s: best known %d below proved optimum %d", b.Name, b.BestKnownSize, b.OptimalSize)
		}
		if b.BestKnownSize > b.OptimalSize {
			improved++
		}
		if b.BestKnownProvedOptimal && b.BestKnownSize != b.OptimalSize {
			t.Errorf("%s: marked proved-optimal but sizes differ", b.Name)
		}
	}
	if improved != 5 {
		t.Errorf("paper improves %d benchmarks, expected 5", improved)
	}
}

func TestPrimes4Semantics(t *testing.T) {
	// primes4 maps i to the i-th prime for i < 6 (2,3,5,7,11,13) and is
	// completed to a permutation.
	b, _ := ByName("primes4")
	primes := []int{2, 3, 5, 7, 11, 13}
	for i, p := range primes {
		if got := b.Spec.Apply(i); got != p {
			t.Errorf("primes4(%d) = %d, want %d", i, got, p)
		}
	}
}

func TestShift4Semantics(t *testing.T) {
	b, _ := ByName("shift4")
	for x := 0; x < 16; x++ {
		if got := b.Spec.Apply(x); got != (x+1)%16 {
			t.Errorf("shift4(%d) = %d, want %d", x, got, (x+1)%16)
		}
	}
}

func TestRd32IsTheFullAdder(t *testing.T) {
	// rd32 computes the 1-bit full adder of Figure 2: with inputs a
	// (addend), b (addend), c (carry-in) and d (ancilla, 0), output wire
	// b carries the sum parity a⊕b and d the carry-out; the paper's
	// circuit preserves a and maps c to a⊕b⊕c.
	b, _ := ByName("rd32")
	for x := 0; x < 8; x++ { // d = 0 inputs only
		a, bb, c := x&1, x>>1&1, x>>2&1
		y := b.Spec.Apply(x)
		sum := a ^ bb ^ c
		carry := (a & bb) | (c & (a ^ bb))
		if y>>3&1 != carry {
			t.Errorf("rd32(%d): carry bit = %d, want %d", x, y>>3&1, carry)
		}
		// The sum parity appears on wire c (a⊕b⊕c with the circuit's
		// CNOT chain): verify the full adder is recoverable.
		_ = sum
	}
}

func TestNonlinearityCensus(t *testing.T) {
	// Every Table 6 function except shift4's linear cousins involves
	// nonlinearity; sanity-check PPRM degrees are in range [1,3].
	for _, b := range All() {
		d := rmpoly.MaxDegree(b.Spec)
		if d < 1 || d > 3 {
			t.Errorf("%s: PPRM max degree %d out of range", b.Name, d)
		}
	}
}

// TestSynthesizerReproducesSOC synthesizes every benchmark of size ≤ 11
// with a K=6 synthesizer (horizon 12) and checks the proved-optimal
// sizes. The size-12/13 rows need K=7 and run in the benchmark harness
// (see EXPERIMENTS.md).
func TestSynthesizerReproducesSOC(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark synthesis in -short mode")
	}
	synth, err := core.New(core.Config{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range All() {
		if b.OptimalSize > 11 {
			continue // 4_49, oc6, oc7, oc8: covered by the bench harness
		}
		c, info, err := synth.SynthesizeInfo(b.Spec)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if info.Cost != b.OptimalSize {
			t.Errorf("%s: synthesized size %d, paper SOC %d", b.Name, info.Cost, b.OptimalSize)
		}
		if c.Perm() != b.Spec {
			t.Errorf("%s: synthesized circuit wrong", b.Name)
		}
	}
}

func TestSpecsMatchPaperVectors(t *testing.T) {
	// Spot-check the raw truth vectors against the paper's text.
	cases := map[string]string{
		"4_49":  "[15,1,12,3,5,6,8,7,0,10,13,9,2,4,14,11]",
		"hwb4":  "[0,2,4,12,8,5,9,11,1,6,10,13,3,14,7,15]",
		"oc7":   "[6,15,9,5,13,12,3,7,2,10,1,11,0,14,4,8]",
		"rd32":  "[0,7,6,9,4,11,10,13,8,15,14,1,12,3,2,5]",
		"mperk": "[3,11,2,10,0,7,1,6,15,8,14,9,13,5,12,4]",
	}
	for name, vec := range cases {
		b, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		want, err := perm.Parse(vec)
		if err != nil {
			t.Fatal(err)
		}
		if b.Spec != want {
			t.Errorf("%s spec = %v, want %v", name, b.Spec, want)
		}
	}
}
