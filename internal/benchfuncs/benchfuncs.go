// Package benchfuncs is the paper's Table 6 benchmark suite: the thirteen
// named reversible functions with their published specifications,
// best-known sizes from prior literature (SBKC), proved-optimal sizes
// found by the paper (SOC), and the paper's published optimal circuits.
//
// The suite drives the Table 6 reproduction: synthesizing every
// specification and checking the optimal size, and validating that the
// published circuits implement the published specifications (which also
// pins down the wire-ordering conventions).
package benchfuncs

import (
	"repro/internal/circuit"
	"repro/internal/perm"
)

// Benchmark is one Table 6 row.
type Benchmark struct {
	// Name as used in the literature ("4_49" is printed "4 49" in the
	// paper).
	Name string
	// Spec is the function as the output truth vector.
	Spec perm.Perm
	// BestKnownSize is the size of the best previously known circuit
	// (SBKC); -1 when the paper introduces the function (primes4).
	BestKnownSize int
	// BestKnownProvedOptimal is Table 6's "PO?" column.
	BestKnownProvedOptimal bool
	// OptimalSize is the paper's proved-optimal gate count (SOC).
	OptimalSize int
	// PaperCircuit is the optimal circuit printed in Table 6, verbatim.
	PaperCircuit circuit.Circuit
	// RepairedCircuit is set only when the printed circuit does not
	// implement the printed specification (oc8, where one gate was lost
	// at a line break): the unique single-gate insertion restoring both
	// the function and the printed optimal size.
	RepairedCircuit circuit.Circuit
	// PaperRuntimeSec is the paper's reported synthesis runtime on CS1
	// with the k = 9 tables preloaded.
	PaperRuntimeSec float64
	// Note carries the paper's footnotes (e.g. mperk's asterisk).
	Note string
}

// all is ordered as in the paper's Table 6.
var all = []Benchmark{
	{
		Name:          "4_49",
		Spec:          perm.MustFromValues([16]uint8{15, 1, 12, 3, 5, 6, 8, 7, 0, 10, 13, 9, 2, 4, 14, 11}),
		BestKnownSize: 12, OptimalSize: 12,
		PaperCircuit: circuit.MustParse(
			"NOT(a) CNOT(c,a) CNOT(a,d) TOF(a,b,d) CNOT(d,a) TOF(c,d,b) TOF(a,d,c) TOF(b,c,a) TOF(a,b,d) NOT(a) CNOT(d,b) CNOT(d,c)"),
		PaperRuntimeSec: 0.000690,
	},
	{
		Name:          "4bit-7-8",
		Spec:          perm.MustFromValues([16]uint8{0, 1, 2, 3, 4, 5, 6, 8, 7, 9, 10, 11, 12, 13, 14, 15}),
		BestKnownSize: 7, OptimalSize: 7,
		PaperCircuit: circuit.MustParse(
			"CNOT(d,b) CNOT(d,a) CNOT(c,d) TOF4(a,b,d,c) CNOT(c,d) CNOT(d,b) CNOT(d,a)"),
		PaperRuntimeSec: 0.000003,
	},
	{
		Name:          "decode42",
		Spec:          perm.MustFromValues([16]uint8{1, 2, 4, 8, 0, 3, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15}),
		BestKnownSize: 11, OptimalSize: 10,
		PaperCircuit: circuit.MustParse(
			"CNOT(c,b) CNOT(d,a) CNOT(c,a) TOF(a,d,b) CNOT(b,c) TOF4(a,b,c,d) TOF(b,d,c) CNOT(c,a) CNOT(a,b) NOT(a)"),
		PaperRuntimeSec: 0.000006,
	},
	{
		Name:          "hwb4",
		Spec:          perm.MustFromValues([16]uint8{0, 2, 4, 12, 8, 5, 9, 11, 1, 6, 10, 13, 3, 14, 7, 15}),
		BestKnownSize: 11, BestKnownProvedOptimal: true, OptimalSize: 11,
		PaperCircuit: circuit.MustParse(
			"CNOT(b,d) CNOT(d,a) CNOT(a,c) TOF4(b,c,d,a) CNOT(d,b) CNOT(c,d) TOF(a,c,b) TOF4(b,c,d,a) CNOT(d,c) CNOT(a,c) CNOT(b,d)"),
		PaperRuntimeSec: 0.000106,
	},
	{
		Name:          "imark",
		Spec:          perm.MustFromValues([16]uint8{4, 5, 2, 14, 0, 3, 6, 10, 11, 8, 15, 1, 12, 13, 7, 9}),
		BestKnownSize: 7, OptimalSize: 7,
		PaperCircuit: circuit.MustParse(
			"TOF(c,d,a) TOF(a,b,d) CNOT(d,c) CNOT(b,c) CNOT(d,a) TOF(a,c,b) NOT(c)"),
		PaperRuntimeSec: 0.000003,
	},
	{
		Name:          "mperk",
		Spec:          perm.MustFromValues([16]uint8{3, 11, 2, 10, 0, 7, 1, 6, 15, 8, 14, 9, 13, 5, 12, 4}),
		BestKnownSize: 9, OptimalSize: 9,
		PaperCircuit: circuit.MustParse(
			"NOT(c) CNOT(d,c) TOF(c,d,b) TOF(a,c,d) CNOT(b,a) CNOT(d,a) CNOT(c,a) CNOT(a,b) CNOT(b,c)"),
		PaperRuntimeSec: 0.000003,
		Note:            "paper marks the prior 9-gate circuit with *: it needs extra SWAPs to map inputs to outputs",
	},
	{
		Name:          "oc5",
		Spec:          perm.MustFromValues([16]uint8{6, 0, 12, 15, 7, 1, 5, 2, 4, 10, 13, 3, 11, 8, 14, 9}),
		BestKnownSize: 15, OptimalSize: 11,
		PaperCircuit: circuit.MustParse(
			"TOF(b,d,c) TOF(c,d,b) TOF(a,b,c) NOT(a) CNOT(d,b) CNOT(a,c) TOF(b,c,d) CNOT(a,b) CNOT(c,a) CNOT(a,c) TOF4(a,b,d,c)"),
		PaperRuntimeSec: 0.000313,
	},
	{
		Name:          "oc6",
		Spec:          perm.MustFromValues([16]uint8{9, 0, 2, 15, 11, 6, 7, 8, 14, 3, 4, 13, 5, 1, 12, 10}),
		BestKnownSize: 14, OptimalSize: 12,
		PaperCircuit: circuit.MustParse(
			"TOF4(b,c,d,a) TOF4(a,c,d,b) CNOT(d,c) TOF(b,c,d) TOF(c,d,a) TOF4(a,b,d,c) CNOT(b,a) NOT(a) CNOT(c,b) CNOT(d,c) CNOT(a,d) TOF(b,d,c)"),
		PaperRuntimeSec: 0.000745,
	},
	{
		Name:          "oc7",
		Spec:          perm.MustFromValues([16]uint8{6, 15, 9, 5, 13, 12, 3, 7, 2, 10, 1, 11, 0, 14, 4, 8}),
		BestKnownSize: 17, OptimalSize: 13,
		PaperCircuit: circuit.MustParse(
			"TOF(b,d,c) TOF(a,b,d) CNOT(b,a) TOF4(a,c,d,b) CNOT(c,b) CNOT(d,c) TOF(a,c,d) NOT(b) NOT(d) CNOT(b,c) TOF(b,d,a) TOF(a,c,d) CNOT(c,a)"),
		PaperRuntimeSec: 0.0265,
	},
	{
		Name:          "oc8",
		Spec:          perm.MustFromValues([16]uint8{11, 3, 9, 2, 7, 13, 15, 14, 8, 1, 4, 10, 0, 12, 6, 5}),
		BestKnownSize: 16, OptimalSize: 12,
		PaperCircuit: circuit.MustParse(
			"CNOT(d,a) TOF(b,c,a) TOF(c,d,b) TOF4(a,b,d,c) TOF(a,b,d) TOF(a,d,b) NOT(a) NOT(b) TOF(b,d,a) CNOT(a,d) TOF(b,c,d)"),
		RepairedCircuit: circuit.MustParse(
			"CNOT(a,b) CNOT(d,a) TOF(b,c,a) TOF(c,d,b) TOF4(a,b,d,c) TOF(a,b,d) TOF(a,d,b) NOT(a) NOT(b) TOF(b,d,a) CNOT(a,d) TOF(b,c,d)"),
		PaperRuntimeSec: 0.001395,
		Note:            "the paper prints 11 gates for a 12-gate SOC; the unique single-gate repair (CNOT(a,b) prepended) restores spec and size",
	},
	{
		Name:          "primes4",
		Spec:          perm.MustFromValues([16]uint8{2, 3, 5, 7, 11, 13, 0, 1, 4, 6, 8, 9, 10, 12, 14, 15}),
		BestKnownSize: -1, OptimalSize: 10,
		PaperCircuit: circuit.MustParse(
			"CNOT(d,c) CNOT(c,a) CNOT(b,c) NOT(b) TOF(b,c,d) TOF4(a,b,d,c) TOF(a,c,b) NOT(a) TOF4(a,c,d,b) CNOT(b,a)"),
		PaperRuntimeSec: 0.000012,
		Note:            "introduced by the paper: maps i to the i-th prime for i < 6",
	},
	{
		Name:          "rd32",
		Spec:          perm.MustFromValues([16]uint8{0, 7, 6, 9, 4, 11, 10, 13, 8, 15, 14, 1, 12, 3, 2, 5}),
		BestKnownSize: 4, BestKnownProvedOptimal: true, OptimalSize: 4,
		PaperCircuit: circuit.MustParse(
			"TOF(a,b,d) CNOT(a,b) TOF(b,c,d) CNOT(b,c)"),
		PaperRuntimeSec: 0.000002,
		Note:            "the 1-bit full adder of Figure 2",
	},
	{
		Name:          "shift4",
		Spec:          perm.MustFromValues([16]uint8{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0}),
		BestKnownSize: 4, BestKnownProvedOptimal: true, OptimalSize: 4,
		PaperCircuit: circuit.MustParse(
			"TOF4(a,b,c,d) TOF(a,b,c) CNOT(a,b) NOT(a)"),
		PaperRuntimeSec: 0.000002,
	},
}

// All returns the thirteen Table 6 benchmarks in the paper's order. The
// slice is shared; callers must not modify it.
func All() []Benchmark { return all }

// ByName looks a benchmark up by its name.
func ByName(name string) (Benchmark, bool) {
	for _, b := range all {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// CircuitMatchesSpec reports whether the verbatim published circuit
// implements the published specification exactly.
func (b Benchmark) CircuitMatchesSpec() bool {
	return b.PaperCircuit.Perm() == b.Spec
}

// VerifiedCircuit returns a circuit that provably implements Spec at the
// published optimal size: the verbatim circuit when it matches, the
// repaired circuit otherwise.
func (b Benchmark) VerifiedCircuit() circuit.Circuit {
	if b.CircuitMatchesSpec() {
		return b.PaperCircuit
	}
	return b.RepairedCircuit
}
