package peephole

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mt19937"
)

var (
	synthOnce sync.Once
	synth     *core.Synthesizer
)

func sharedSynth(t testing.TB) *core.Synthesizer {
	synthOnce.Do(func() {
		var err error
		synth, err = core.New(core.Config{K: 4})
		if err != nil {
			panic(err)
		}
	})
	return synth
}

func TestValidate(t *testing.T) {
	good := Circuit{Wires: 6, Gates: []Gate{{Target: 2, Controls: 0b1}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
	bad := []Circuit{
		{Wires: 3},
		{Wires: 30},
		{Wires: 6, Gates: []Gate{{Target: 6}}},
		{Wires: 6, Gates: []Gate{{Target: -1}}},
		{Wires: 6, Gates: []Gate{{Target: 2, Controls: 1 << 7}}},
		{Wires: 6, Gates: []Gate{{Target: 2, Controls: 1 << 2}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad circuit %d accepted", i)
		}
	}
}

func TestGateApply(t *testing.T) {
	g := Gate{Target: 5, Controls: 0b11}
	if got := g.Apply(0b000011); got != 0b100011 {
		t.Fatalf("gate fired wrong: %06b", got)
	}
	if got := g.Apply(0b000001); got != 0b000001 {
		t.Fatalf("gate fired without all controls: %06b", got)
	}
}

func TestCancellingPairCollapses(t *testing.T) {
	o := NewOptimizer(sharedSynth(t))
	c := Circuit{Wires: 8, Gates: []Gate{
		{Target: 1, Controls: 1 << 0},
		{Target: 1, Controls: 1 << 0},
	}}
	out, stats, err := o.Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Gates) != 0 {
		t.Fatalf("cancelling pair not removed: %v", out.Gates)
	}
	if stats.GatesBefore != 2 || stats.GatesAfter != 0 || stats.WindowsImproved == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if !c.Equivalent(out) {
		t.Fatal("optimization changed the function")
	}
}

func TestSwapChainCollapses(t *testing.T) {
	// Three CNOT-swaps of the same pair = one swap (3 gates); six = id.
	swap := []Gate{
		{Target: 1, Controls: 1 << 0},
		{Target: 0, Controls: 1 << 1},
		{Target: 1, Controls: 1 << 0},
	}
	c := Circuit{Wires: 5}
	for i := 0; i < 2; i++ {
		c.Gates = append(c.Gates, swap...)
	}
	o := NewOptimizer(sharedSynth(t))
	out, _, err := o.Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Gates) != 0 {
		t.Fatalf("double swap (identity) reduced to %d gates, want 0", len(out.Gates))
	}
}

func TestPreservesFunctionOnRandomCircuits(t *testing.T) {
	o := NewOptimizer(sharedSynth(t))
	rng := mt19937.New(7)
	for trial := 0; trial < 25; trial++ {
		c := Random(7, 30, rng.Intn)
		out, stats, err := o.Optimize(c)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Equivalent(out) {
			t.Fatalf("trial %d: optimization changed the function", trial)
		}
		if stats.GatesAfter > stats.GatesBefore {
			t.Fatalf("trial %d: optimization grew the circuit: %+v", trial, stats)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("trial %d: optimized circuit invalid: %v", trial, err)
		}
	}
}

func TestRedundantWindowShrinks(t *testing.T) {
	// A deliberately wasteful sub-circuit on wires {2,3,4,5}: the same
	// CNOT four times plus a NOT — optimal is just the NOT.
	c := Circuit{Wires: 8, Gates: []Gate{
		{Target: 2, Controls: 1 << 3},
		{Target: 2, Controls: 1 << 3},
		{Target: 2, Controls: 1 << 3},
		{Target: 2, Controls: 1 << 3},
		{Target: 4},
	}}
	o := NewOptimizer(sharedSynth(t))
	out, _, err := o.Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Gates) != 1 || out.Gates[0].Target != 4 {
		t.Fatalf("redundant window reduced to %v, want single NOT on 4", out.Gates)
	}
}

func TestWideControlGateIsBarrier(t *testing.T) {
	// A 4-control gate cannot be window-optimized but must be preserved.
	c := Circuit{Wires: 6, Gates: []Gate{
		{Target: 1, Controls: 1 << 0},
		{Target: 5, Controls: 0b01111},
		{Target: 1, Controls: 1 << 0},
	}}
	o := NewOptimizer(sharedSynth(t))
	out, _, err := o.Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equivalent(out) {
		t.Fatal("barrier circuit function changed")
	}
	found := false
	for _, g := range out.Gates {
		if g.Target == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("4-control barrier gate vanished: %v", out.Gates)
	}
}

func TestDisjointRegionsBothOptimized(t *testing.T) {
	// Cancelling pairs on wires {0,1} and {6,7}: both must collapse even
	// though they cannot share a window with each other.
	c := Circuit{Wires: 8, Gates: []Gate{
		{Target: 0, Controls: 1 << 1},
		{Target: 0, Controls: 1 << 1},
		{Target: 7, Controls: 1 << 6},
		{Target: 7, Controls: 1 << 6},
	}}
	o := NewOptimizer(sharedSynth(t))
	out, _, err := o.Optimize(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Gates) != 0 {
		t.Fatalf("disjoint cancelling pairs left %v", out.Gates)
	}
}

func TestFourWireCircuitFullyOptimal(t *testing.T) {
	// On exactly 4 wires every window covers the whole circuit, so the
	// result must be globally optimal: compare against direct synthesis.
	s := sharedSynth(t)
	o := NewOptimizer(s)
	rng := mt19937.New(99)
	for trial := 0; trial < 10; trial++ {
		c := Random(4, 7, rng.Intn)
		out, _, err := o.Optimize(c)
		if err != nil {
			t.Fatal(err)
		}
		p, err := c.ToPerm()
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Size(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Gates) != want {
			t.Fatalf("trial %d: peephole got %d gates, optimal is %d", trial, len(out.Gates), want)
		}
	}
}

func TestToPermErrors(t *testing.T) {
	if _, err := (Circuit{Wires: 5}).ToPerm(); err == nil {
		t.Fatal("ToPerm accepted a 5-wire circuit")
	}
}

func TestGateString(t *testing.T) {
	g := Gate{Target: 3, Controls: 1<<0 | 1<<5}
	if got := g.String(); got != "t3 c0 c5" {
		t.Fatalf("String = %q", got)
	}
}

func BenchmarkOptimize30Gates8Wires(b *testing.B) {
	o := NewOptimizer(sharedSynth(b))
	rng := mt19937.New(42)
	c := Random(8, 30, rng.Intn)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := o.Optimize(c); err != nil {
			b.Fatal(err)
		}
	}
}
