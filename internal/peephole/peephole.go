// Package peephole optimizes wide reversible circuits (more than four
// wires) by re-synthesizing 4-wire windows optimally — the application
// that motivates the paper's 0.01-second synthesis time (§1: "The
// algorithm could easily be integrated as part of peephole optimization,
// such as the one presented in [13]").
//
// The optimizer slides over the gate list, greedily growing maximal runs
// of consecutive gates whose combined support fits on at most four wires,
// maps each run down to a 4-bit reversible function, asks the optimal
// synthesizer for a minimal implementation, and splices it back in when
// it is shorter. Passes repeat until a fixed point.
package peephole

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/gate"
	"repro/internal/perm"
)

// Gate is a multiple-control Toffoli gate on a wide register: the target
// bit is flipped when all control bits are 1. Only gates with at most
// three controls can be re-synthesized (they map into the paper's
// library); wider gates act as optimization barriers.
type Gate struct {
	Target   int
	Controls uint32
}

// Support returns the mask of wires the gate touches.
func (g Gate) Support() uint32 { return g.Controls | 1<<uint(g.Target) }

// Apply computes the gate's action on a packed register state.
func (g Gate) Apply(x uint32) uint32 {
	if x&g.Controls == g.Controls {
		return x ^ 1<<uint(g.Target)
	}
	return x
}

// String renders the gate as e.g. "t3 c0,c5" (target wire 3, controls 0
// and 5) — a compact notation for wide registers.
func (g Gate) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "t%d", g.Target)
	for w := 0; w < 32; w++ {
		if g.Controls>>uint(w)&1 == 1 {
			fmt.Fprintf(&sb, " c%d", w)
		}
	}
	return sb.String()
}

// Circuit is a reversible circuit over Wires wires (4 ≤ Wires ≤ 24).
type Circuit struct {
	Wires int
	Gates []Gate
}

// Validate checks wire bounds and target/control disjointness.
func (c Circuit) Validate() error {
	if c.Wires < 4 || c.Wires > 24 {
		return fmt.Errorf("peephole: %d wires out of supported range [4,24]", c.Wires)
	}
	for i, g := range c.Gates {
		if g.Target < 0 || g.Target >= c.Wires {
			return fmt.Errorf("peephole: gate %d target %d out of range", i, g.Target)
		}
		if g.Controls>>uint(c.Wires) != 0 {
			return fmt.Errorf("peephole: gate %d controls exceed %d wires", i, c.Wires)
		}
		if g.Controls&(1<<uint(g.Target)) != 0 {
			return fmt.Errorf("peephole: gate %d target is also a control", i)
		}
	}
	return nil
}

// Apply simulates the circuit on one register state.
func (c Circuit) Apply(x uint32) uint32 {
	for _, g := range c.Gates {
		x = g.Apply(x)
	}
	return x
}

// Equivalent reports whether two circuits over the same register compute
// the same function, by exhaustive simulation (2^Wires states).
func (c Circuit) Equivalent(d Circuit) bool {
	if c.Wires != d.Wires {
		return false
	}
	for x := uint32(0); x < 1<<uint(c.Wires); x++ {
		if c.Apply(x) != d.Apply(x) {
			return false
		}
	}
	return true
}

// GateCount returns the number of gates.
func (c Circuit) GateCount() int { return len(c.Gates) }

// Stats reports what one Optimize call did.
type Stats struct {
	GatesBefore     int
	GatesAfter      int
	Passes          int
	WindowsTried    int
	WindowsImproved int
}

// Optimizer rewrites wide circuits using an optimal 4-bit synthesizer.
type Optimizer struct {
	synth *core.Synthesizer
}

// NewOptimizer wraps a synthesizer. Windows whose optimal size exceeds
// the synthesizer's horizon are left untouched (they can only arise when
// the window already has more gates than the horizon).
func NewOptimizer(s *core.Synthesizer) *Optimizer { return &Optimizer{synth: s} }

// Optimize returns a functionally equivalent circuit with no more gates,
// along with statistics. The input is not modified.
func (o *Optimizer) Optimize(c Circuit) (Circuit, Stats, error) {
	if err := c.Validate(); err != nil {
		return Circuit{}, Stats{}, err
	}
	out := Circuit{Wires: c.Wires, Gates: append([]Gate(nil), c.Gates...)}
	stats := Stats{GatesBefore: len(c.Gates)}
	for {
		stats.Passes++
		improved, err := o.pass(&out, &stats)
		if err != nil {
			return Circuit{}, stats, err
		}
		if !improved {
			break
		}
	}
	stats.GatesAfter = len(out.Gates)
	return out, stats, nil
}

// pass performs one left-to-right sweep, splicing in improvements.
func (o *Optimizer) pass(c *Circuit, stats *Stats) (bool, error) {
	improvedAny := false
	for i := 0; i < len(c.Gates); {
		j, wires := growWindow(c.Gates, i)
		if j-i < 2 || len(wires) == 0 {
			i++
			continue
		}
		stats.WindowsTried++
		replacement, ok, err := o.resynthesize(c.Gates[i:j], wires)
		if err != nil {
			return false, err
		}
		if ok && len(replacement) < j-i {
			stats.WindowsImproved++
			improvedAny = true
			rest := append([]Gate(nil), c.Gates[j:]...)
			c.Gates = append(c.Gates[:i], replacement...)
			c.Gates = append(c.Gates, rest...)
			i += len(replacement)
			continue
		}
		// Move past the first gate so overlapping windows still get
		// tried.
		i++
	}
	return improvedAny, nil
}

// growWindow extends [start, end) while the union support stays within
// four wires and every gate is library-shaped (≤ 3 controls). It returns
// the end index and the sorted wires used.
func growWindow(gates []Gate, start int) (end int, wires []int) {
	var support uint32
	end = start
	for end < len(gates) {
		g := gates[end]
		if bits.OnesCount32(g.Controls) > 3 {
			break // barrier: not a library gate shape
		}
		next := support | g.Support()
		if bits.OnesCount32(next) > 4 {
			break
		}
		support = next
		end++
	}
	for w := 0; w < 32; w++ {
		if support>>uint(w)&1 == 1 {
			wires = append(wires, w)
		}
	}
	return end, wires
}

// resynthesize maps a window onto 4 wires, synthesizes optimally, and
// maps back. ok is false when the window exceeds the synthesizer horizon.
func (o *Optimizer) resynthesize(window []Gate, wires []int) ([]Gate, bool, error) {
	// wireMap[global wire] = local wire index.
	wireMap := map[int]int{}
	for local, w := range wires {
		wireMap[w] = local
	}
	narrow := make(circuit.Circuit, len(window))
	for i, g := range window {
		var controls uint8
		for w := 0; w < 32; w++ {
			if g.Controls>>uint(w)&1 == 1 {
				controls |= 1 << uint(wireMap[w])
			}
		}
		ng, err := gate.New(wireMap[g.Target], controls)
		if err != nil {
			return nil, false, fmt.Errorf("peephole: window gate %d: %v", i, err)
		}
		narrow[i] = ng
	}
	f := narrow.Perm()
	optimal, err := o.synth.Synthesize(f)
	if errors.Is(err, core.ErrBeyondHorizon) {
		// The window's optimal size cannot exceed the window length, so
		// this only happens when the window itself is longer than the
		// horizon: leave it untouched.
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	wide := make([]Gate, len(optimal))
	for i, g := range optimal {
		var controls uint32
		for local, w := range wires {
			if g.Controls()>>uint(local)&1 == 1 {
				controls |= 1 << uint(w)
			}
		}
		wide[i] = Gate{Target: wires[g.Target()], Controls: controls}
	}
	return wide, true, nil
}

// Random builds a pseudo-random wide circuit for experiments: n gates
// over the given wire count with control counts ≤ 3, using the provided
// integer source (e.g. mt19937.New(seed).Intn).
func Random(wires, n int, intn func(int) int) Circuit {
	c := Circuit{Wires: wires, Gates: make([]Gate, n)}
	for i := range c.Gates {
		t := intn(wires)
		nc := intn(4)
		var controls uint32
		for bits.OnesCount32(controls) < nc {
			w := intn(wires)
			if w != t {
				controls |= 1 << uint(w)
			}
		}
		c.Gates[i] = Gate{Target: t, Controls: controls}
	}
	return c
}

// ToPerm lowers a 4-wire wide circuit to a packed permutation; it errors
// on wider circuits.
func (c Circuit) ToPerm() (perm.Perm, error) {
	if c.Wires != 4 {
		return 0, fmt.Errorf("peephole: circuit has %d wires, want 4", c.Wires)
	}
	var vals [16]uint8
	for x := 0; x < 16; x++ {
		vals[x] = uint8(c.Apply(uint32(x)))
	}
	return perm.FromValues(vals)
}
