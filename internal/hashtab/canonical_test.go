package hashtab

import (
	"math/rand"
	"sort"
	"testing"
)

// testEntries returns n distinct nonzero keys with values, deterministic
// per seed.
func testEntries(n int, seed int64) ([]uint64, []uint16) {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	vals := make([]uint16, 0, n)
	for len(keys) < n {
		k := rng.Uint64() | 1
		if seen[k] {
			continue
		}
		seen[k] = true
		keys = append(keys, k)
		vals = append(vals, uint16(rng.Intn(1<<16)))
	}
	return keys, vals
}

// TestCompactCanonicalLayout: the frozen arrays must be a pure function
// of the stored entry set — two tables holding the same entries but
// built by different insertion histories must compact to identical
// bytes. This is the invariant the out-of-core builder relies on to
// emit stores byte-identical to the in-memory path.
func TestCompactCanonicalLayout(t *testing.T) {
	keys, vals := testEntries(5000, 1)
	a := NewShardedWithShards(len(keys), 16)
	for i, k := range keys {
		a.Insert(k, vals[i])
	}
	b := NewShardedWithShards(4, 16) // different capacity hint: forces different grow history
	perm := rand.New(rand.NewSource(2)).Perm(len(keys))
	for _, i := range perm {
		b.Insert(keys[i], vals[i])
	}
	fa, err := Compact(a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Compact(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(fa.RawKeys()) != len(fb.RawKeys()) {
		t.Fatalf("slot counts differ: %d vs %d", len(fa.RawKeys()), len(fb.RawKeys()))
	}
	for i := range fa.RawKeys() {
		if fa.RawKeys()[i] != fb.RawKeys()[i] || fa.RawVals()[i] != fb.RawVals()[i] {
			t.Fatalf("slot %d differs: (%#x,%d) vs (%#x,%d)",
				i, fa.RawKeys()[i], fa.RawVals()[i], fb.RawKeys()[i], fb.RawVals()[i])
		}
	}
	// And every key still resolves.
	for i, k := range keys {
		if v, ok := fa.Lookup(k); !ok || v != vals[i] {
			t.Fatalf("key %#x: got (%d,%v), want (%d,true)", k, v, ok, vals[i])
		}
	}
}

// TestCompactSplitCanonicalLayout: entry order into CompactSplit must not
// affect the laid-out arrays.
func TestCompactSplitCanonicalLayout(t *testing.T) {
	keys, vals := testEntries(3000, 3)
	const shards, splitN = 8, 4
	shift := uint(64 - log2(shards*splitN))
	for idx := 0; idx < splitN; idx++ {
		var rk []uint64
		var rv []uint16
		for i, k := range keys {
			if int(Hash64Shift(k)>>shift)/shards == idx {
				rk = append(rk, k)
				rv = append(rv, vals[i])
			}
		}
		fa, err := CompactSplit(append([]uint64(nil), rk...), append([]uint16(nil), rv...), shards, splitN, idx)
		if err != nil {
			t.Fatal(err)
		}
		// Shuffle and re-lay.
		perm := rand.New(rand.NewSource(int64(idx))).Perm(len(rk))
		sk := make([]uint64, len(rk))
		sv := make([]uint16, len(rk))
		for j, i := range perm {
			sk[j], sv[j] = rk[i], rv[i]
		}
		fb, err := CompactSplit(sk, sv, shards, splitN, idx)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fa.RawKeys() {
			if fa.RawKeys()[i] != fb.RawKeys()[i] || fa.RawVals()[i] != fb.RawVals()[i] {
				t.Fatalf("split %d slot %d differs", idx, i)
			}
		}
	}
}

// TestFrozenSlotsPerShard: the exported sizing helper must agree with
// what Compact actually chooses.
func TestFrozenSlotsPerShard(t *testing.T) {
	for _, n := range []int{0, 1, 13, 14, 100, 871, 872} {
		keys, vals := testEntries(n, int64(n))
		st := NewShardedWithShards(n, 1)
		for i, k := range keys {
			st.Insert(k, vals[i])
		}
		ft, err := Compact(st)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := ft.SlotsPerShard(), FrozenSlotsPerShard(n); got != want {
			t.Fatalf("n=%d: Compact chose %d slots/shard, helper says %d", n, got, want)
		}
	}
}

// TestContainsBatchSorted: the run-sorted probe must agree with Contains
// and touch every key exactly once.
func TestContainsBatchSorted(t *testing.T) {
	keys, vals := testEntries(4000, 7)
	st := NewShardedWithShards(len(keys), 32)
	for i := 0; i < len(keys)/2; i++ {
		st.Insert(keys[i], vals[i])
	}
	probe := append([]uint64(nil), keys...)
	sort.Slice(probe, func(a, b int) bool {
		sa, sb := Hash64Shift(probe[a])>>st.shift, Hash64Shift(probe[b])>>st.shift
		if sa != sb {
			return sa < sb
		}
		return probe[a] < probe[b]
	})
	present := make([]bool, len(probe))
	n := st.ContainsBatchSorted(probe, present)
	if n != len(keys)/2 {
		t.Fatalf("present count = %d, want %d", n, len(keys)/2)
	}
	for i, k := range probe {
		if present[i] != st.Contains(k) {
			t.Fatalf("key %#x: batch says %v, Contains says %v", k, present[i], st.Contains(k))
		}
	}
	// Frozen path must agree too.
	st.Freeze()
	present2 := make([]bool, len(probe))
	if got := st.ContainsBatchSorted(probe, present2); got != n {
		t.Fatalf("frozen probe count = %d, want %d", got, n)
	}
	// An out-of-order batch must panic rather than silently mis-probe.
	if len(probe) > 2 {
		bad := []uint64{probe[len(probe)-1], probe[0]}
		if Hash64Shift(bad[0])>>st.shift > Hash64Shift(bad[1])>>st.shift {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-order batch did not panic")
				}
			}()
			st.ContainsBatchSorted(bad, make([]bool, 2))
		}
	}
}
