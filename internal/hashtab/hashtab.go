// Package hashtab implements the open-addressing hash table of paper
// §3.3: linear probing over packed 64-bit permutation keys hashed with
// Thomas Wang's hash64shift (paper ref [18]).
//
// The table maps a canonical representative (a perm.Perm packed word) to
// a small value — in the paper, the first or last gate of a minimal
// circuit. Keys are raw uint64 so the package stays decoupled from the
// permutation layer; key 0 is reserved as the empty-slot sentinel, which
// is safe because the packed word 0 is not a valid permutation.
//
// The membership test is the innermost operation of both the
// breadth-first search (Algorithm 2) and the search-and-lookup synthesis
// (Algorithm 1), so the implementation is a pair of flat slices with
// power-of-two sizing and no per-entry allocation.
package hashtab

import (
	"fmt"
	"math/bits"
)

// HashKind selects the hash function mixing keys into slot indices.
type HashKind uint8

const (
	// Wang is Thomas Wang's 64-bit hash64shift — the paper's choice,
	// "fast to compute and distributes the permutations uniformly".
	Wang HashKind = iota
	// WeakMultiplicative is a deliberately weaker single-multiply hash
	// kept for the ablation benchmarks comparing probe-chain behaviour.
	WeakMultiplicative
)

// Hash64Shift is Thomas Wang's 64-bit integer hash (paper ref [18]).
func Hash64Shift(key uint64) uint64 {
	key = ^key + key<<21
	key ^= key >> 24
	key = key + key<<3 + key<<8
	key ^= key >> 14
	key = key + key<<2 + key<<4
	key ^= key >> 28
	key += key << 31
	return key
}

// weakHash is a single Fibonacci multiply; packed permutations are highly
// structured, so this clusters badly — which is the point of the ablation.
func weakHash(key uint64) uint64 {
	return key * 0x9E3779B97F4A7C15
}

// maxLoadFactor triggers doubling; the paper runs its k = 8 table at load
// 0.84, and linear probing degrades quickly beyond that.
const maxLoadFactor = 0.85

// Table is a linear-probing hash map from non-zero uint64 keys to uint16
// values. The zero value is not usable; call New.
type Table struct {
	keys  []uint64
	vals  []uint16
	mask  uint64
	count int
	kind  HashKind
}

// New returns a table pre-sized to hold at least capacityHint entries
// without growing, using Wang's hash.
func New(capacityHint int) *Table {
	return NewWithHash(capacityHint, Wang)
}

// NewWithHash is New with an explicit hash function choice.
func NewWithHash(capacityHint int, kind HashKind) *Table {
	if capacityHint < 1 {
		capacityHint = 1
	}
	slots := 16
	for float64(capacityHint) > maxLoadFactor*float64(slots) {
		slots <<= 1
	}
	return &Table{
		keys: make([]uint64, slots),
		vals: make([]uint16, slots),
		mask: uint64(slots - 1),
		kind: kind,
	}
}

func (t *Table) hash(key uint64) uint64 {
	if t.kind == Wang {
		return Hash64Shift(key)
	}
	return weakHash(key)
}

// Len returns the number of stored entries.
func (t *Table) Len() int { return t.count }

// Slots returns the current number of slots (a power of two).
func (t *Table) Slots() int { return len(t.keys) }

// LoadFactor returns count/slots.
func (t *Table) LoadFactor() float64 { return float64(t.count) / float64(len(t.keys)) }

// MemoryBytes returns the approximate memory footprint of the backing
// arrays (8-byte key + 2-byte value per slot), the quantity reported in
// the paper's Table 2 "Memory Usage" column.
func (t *Table) MemoryBytes() int64 { return int64(len(t.keys)) * 10 }

// Lookup returns the value stored under key and whether it is present.
// Key 0 is never present.
func (t *Table) Lookup(key uint64) (uint16, bool) {
	if key == 0 {
		return 0, false
	}
	i := t.hash(key) & t.mask
	for {
		k := t.keys[i]
		if k == key {
			return t.vals[i], true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & t.mask
	}
}

// Contains reports whether key is present.
func (t *Table) Contains(key uint64) bool {
	_, ok := t.Lookup(key)
	return ok
}

// Insert stores val under key if the key is absent and returns true; if
// the key is already present it leaves the existing value untouched and
// returns it with false. Key 0 is rejected with a panic: it would corrupt
// the empty-slot encoding, and no valid packed permutation is 0.
func (t *Table) Insert(key uint64, val uint16) (existing uint16, inserted bool) {
	if key == 0 {
		panic("hashtab: key 0 is the empty-slot sentinel")
	}
	if float64(t.count+1) > maxLoadFactor*float64(len(t.keys)) {
		t.grow()
	}
	i := t.hash(key) & t.mask
	for {
		k := t.keys[i]
		if k == key {
			return t.vals[i], false
		}
		if k == 0 {
			t.keys[i] = key
			t.vals[i] = val
			t.count++
			return val, true
		}
		i = (i + 1) & t.mask
	}
}

// Update overwrites the value under an existing key, inserting if absent.
func (t *Table) Update(key uint64, val uint16) {
	if key == 0 {
		panic("hashtab: key 0 is the empty-slot sentinel")
	}
	if float64(t.count+1) > maxLoadFactor*float64(len(t.keys)) {
		t.grow()
	}
	i := t.hash(key) & t.mask
	for {
		k := t.keys[i]
		if k == key {
			t.vals[i] = val
			return
		}
		if k == 0 {
			t.keys[i] = key
			t.vals[i] = val
			t.count++
			return
		}
		i = (i + 1) & t.mask
	}
}

func (t *Table) grow() {
	oldKeys, oldVals := t.keys, t.vals
	slots := len(oldKeys) * 2
	t.keys = make([]uint64, slots)
	t.vals = make([]uint16, slots)
	t.mask = uint64(slots - 1)
	t.count = 0
	for i, k := range oldKeys {
		if k != 0 {
			t.Insert(k, oldVals[i])
		}
	}
}

// ForEach calls fn for every (key, value) pair in unspecified order,
// stopping early if fn returns false.
func (t *Table) ForEach(fn func(key uint64, val uint16) bool) {
	for i, k := range t.keys {
		if k != 0 {
			if !fn(k, t.vals[i]) {
				return
			}
		}
	}
}

// Stats describes probe-chain behaviour, the quantities of the paper's
// Table 2: how far entries sit from their home slot under linear probing.
type Stats struct {
	Entries     int
	Slots       int
	LoadFactor  float64
	MemoryBytes int64
	// AvgChain is the mean probe-sequence length over stored keys (a key
	// in its home slot has chain length 1).
	AvgChain float64
	// MaxChain is the longest probe sequence over stored keys.
	MaxChain int
}

// ComputeStats scans the table and returns probe-chain statistics.
func (t *Table) ComputeStats() Stats {
	s := Stats{
		Entries:     t.count,
		Slots:       len(t.keys),
		LoadFactor:  t.LoadFactor(),
		MemoryBytes: t.MemoryBytes(),
	}
	if t.count == 0 {
		return s
	}
	total := 0
	for i, k := range t.keys {
		if k == 0 {
			continue
		}
		home := t.hash(k) & t.mask
		dist := int((uint64(i) - home) & t.mask)
		chain := dist + 1
		total += chain
		if chain > s.MaxChain {
			s.MaxChain = chain
		}
	}
	s.AvgChain = float64(total) / float64(t.count)
	return s
}

// String summarizes the table in Table 2's format.
func (s Stats) String() string {
	return fmt.Sprintf("entries=%d slots=2^%d load=%.2f mem=%s avgChain=%.2f maxChain=%d",
		s.Entries, bits.TrailingZeros(uint(s.Slots)), s.LoadFactor,
		FormatBytes(s.MemoryBytes), s.AvgChain, s.MaxChain)
}

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}
