package hashtab

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"unsafe"
)

// FrozenTable is the immutable, flat-layout view of a table: every shard
// occupies the same power-of-two number of slots inside two contiguous
// arrays (keys, vals), so the whole probe structure is two allocations —
// or, on the serving path, two sections of a memory-mapped table file
// (tablesio format v2). Because the layout is position-determined by the
// Wang hash alone, a persisted FrozenTable needs no parsing and no
// rehashing to become servable: the mapped bytes ARE the table.
//
// The read path is the innermost operation of the meet-in-the-middle
// search, so Lookup probes through raw pointers (no per-probe bounds
// checks) with the shard and slot derived from one hash by shift/mask
// arithmetic only. The geometry is validated once at construction, which
// is what makes the unchecked arithmetic safe: shard index is hash >>
// shardShift < shardCount and slot index is masked, so every access
// stays inside the arrays for any key and any (even corrupt) cell
// contents. A probe visits at most slotsPerShard cells, so a full
// (corrupt) shard terminates instead of cycling.
//
// A FrozenTable may also hold a *split* of a table: only the shards of
// one contiguous high-hash range out of splitN equal ranges (the store
// partitioning unit of a fleet). The layout inside the held range is
// identical to the full table's — shard index is still derived from the
// hash alone, offset by the first owned shard — so a split table answers
// its range byte-identically to the full table and reports keys outside
// its range as absent (callers that must distinguish "absent" from "not
// owned" check OwnsKey first).
//
// A FrozenTable is safe for concurrent use by any number of readers.
type FrozenTable struct {
	keys []uint64
	vals []uint16
	// keysPtr/valsPtr cache the backing-array base pointers; the slices
	// above keep the memory (or mapping owner) reachable.
	keysPtr unsafe.Pointer
	valsPtr unsafe.Pointer
	// shardShift is 64 − log2(splitN·shardCount): global shard index =
	// hash >> shardShift. For a full table splitN is 1 and shardBase 0.
	shardShift uint
	// slotLog is log2(slots per shard); slotMask = 1<<slotLog − 1.
	slotLog  uint
	slotMask uint64
	// shardBase is the first global shard this table holds; local shard
	// index = global − shardBase, valid in [0, shardCount).
	shardBase  uint64
	shardCount int
	count      int
	// lifeMu serializes the lifecycle surface (SetMapped/SetCloser/
	// Residency/Close): a stats scrape probing page residency must never
	// race the shutdown path unmapping the file. The query hot path
	// never touches these fields, so the mutex costs lookups nothing.
	lifeMu sync.Mutex
	closer func() error
	// mapped is the whole backing file mapping when the table is
	// memory-mapped (set by the loader via SetMapped), enabling
	// page-residency telemetry; nil for heap-backed tables.
	mapped []byte
}

// maxFrozenSlots bounds the total slot count so global slot numbers fit
// in uint32, the width of the persisted per-level slot index.
const maxFrozenSlots = int64(1) << 32

// minShardSlots is the smallest per-shard slot count; it keeps the mask
// arithmetic non-degenerate and matches the inner Table's minimum.
const minShardSlots = 16

// NewFrozen wraps pre-laid-out slot arrays as a frozen table. The slices
// must follow the canonical layout: shardCount uniform shards of
// len(keys)/shardCount slots each (both powers of two), key 0 marking
// empty slots, and every key placed on its linear-probe chain from slot
// Hash64Shift(key)&slotMask of shard Hash64Shift(key)>>shardShift.
// count is the number of non-empty slots. Only the geometry is validated
// here; the placement invariant is the writer's contract (tablesio
// verifies it when loading untrusted streams).
func NewFrozen(keys []uint64, vals []uint16, shardCount, count int) (*FrozenTable, error) {
	return NewFrozenSplit(keys, vals, shardCount, count, 1, 0)
}

// NewFrozenSplit wraps the slot arrays of one split of a table: range
// splitIdx of splitN equal high-hash ranges (splitN a power of two). The
// arrays hold only this range's shardCount shards; global shard index
// hash >> shardShift runs over splitN·shardCount conceptual shards, of
// which this table owns [splitIdx·shardCount, (splitIdx+1)·shardCount).
// NewFrozen is the splitN = 1 case.
func NewFrozenSplit(keys []uint64, vals []uint16, shardCount, count, splitN, splitIdx int) (*FrozenTable, error) {
	if len(keys) == 0 || len(keys) != len(vals) {
		return nil, fmt.Errorf("hashtab: frozen slot arrays have lengths %d/%d", len(keys), len(vals))
	}
	if splitN < 1 || splitN&(splitN-1) != 0 {
		return nil, fmt.Errorf("hashtab: split count %d is not a power of two", splitN)
	}
	if splitIdx < 0 || splitIdx >= splitN {
		return nil, fmt.Errorf("hashtab: split index %d out of range [0, %d)", splitIdx, splitN)
	}
	if shardCount < 1 || shardCount&(shardCount-1) != 0 || shardCount > 1<<16 ||
		int64(shardCount)*int64(splitN) > 1<<16 {
		return nil, fmt.Errorf("hashtab: %d shards × split %d is not a power of two in [1, 65536]", shardCount, splitN)
	}
	if int64(len(keys)) > maxFrozenSlots {
		return nil, fmt.Errorf("hashtab: %d slots exceed the uint32 slot-index space", len(keys))
	}
	perShard := len(keys) / shardCount
	if perShard*shardCount != len(keys) || perShard < minShardSlots || perShard&(perShard-1) != 0 {
		return nil, fmt.Errorf("hashtab: %d slots do not split into %d uniform power-of-two shards", len(keys), shardCount)
	}
	if count < 0 || count > len(keys) {
		return nil, fmt.Errorf("hashtab: frozen entry count %d out of range [0, %d]", count, len(keys))
	}
	slotLog := uint(bits.TrailingZeros(uint(perShard)))
	return &FrozenTable{
		keys:       keys,
		vals:       vals,
		keysPtr:    unsafe.Pointer(unsafe.SliceData(keys)),
		valsPtr:    unsafe.Pointer(unsafe.SliceData(vals)),
		shardShift: uint(64 - bits.TrailingZeros(uint(shardCount*splitN))),
		slotLog:    slotLog,
		slotMask:   uint64(perShard - 1),
		shardBase:  uint64(splitIdx) * uint64(shardCount),
		shardCount: shardCount,
		count:      count,
	}, nil
}

// FrozenSlotsPerShard returns the uniform per-shard slot count the
// frozen layout uses for a table whose fullest shard holds maxCount
// entries: the smallest power of two ≥ minShardSlots that keeps that
// shard at or under the build-phase load factor. Exported so an
// out-of-core builder that knows only per-shard entry counts can size a
// store identically to Compact without materializing the table.
func FrozenSlotsPerShard(maxCount int) int {
	perShard := minShardSlots
	for float64(maxCount) > maxLoadFactor*float64(perShard) {
		perShard <<= 1
	}
	return perShard
}

// PlaceShardCanonical lays one shard's entries into the caller's zeroed
// slot arrays (len a power of two ≥ minShardSlots, strictly greater than
// len(ks)) in the canonical frozen order: entries sorted by (home slot,
// key) and then linear-probed. Linear probing fills the same SET of
// slots for any insertion order; fixing the order makes the assignment
// of keys to slots — and therefore the persisted bytes — a pure
// function of the entry set, which is what lets an out-of-core build
// and an in-memory Compact of the same table emit identical stores.
// Keys must be unique and nonzero; ks and vs are reordered in place.
func PlaceShardCanonical(ks []uint64, vs []uint16, slotKeys []uint64, slotVals []uint16) {
	mask := uint64(len(slotKeys) - 1)
	homes := make([]uint64, len(ks))
	for i, k := range ks {
		homes[i] = Hash64Shift(k) & mask
	}
	sort.Sort(&shardEntrySort{homes, ks, vs})
	for i, k := range ks {
		j := homes[i]
		for slotKeys[j] != 0 {
			j = (j + 1) & mask
		}
		slotKeys[j] = k
		slotVals[j] = vs[i]
	}
}

// shardEntrySort sorts one shard's entries by (home slot, key) keeping
// the three parallel slices aligned.
type shardEntrySort struct {
	homes []uint64
	keys  []uint64
	vals  []uint16
}

func (s *shardEntrySort) Len() int { return len(s.keys) }
func (s *shardEntrySort) Less(a, b int) bool {
	if s.homes[a] != s.homes[b] {
		return s.homes[a] < s.homes[b]
	}
	return s.keys[a] < s.keys[b]
}
func (s *shardEntrySort) Swap(a, b int) {
	s.homes[a], s.homes[b] = s.homes[b], s.homes[a]
	s.keys[a], s.keys[b] = s.keys[b], s.keys[a]
	s.vals[a], s.vals[b] = s.vals[b], s.vals[a]
}

// Compact re-lays a sharded table into the frozen flat layout: one pass
// that sizes every shard to the same power of two (the smallest keeping
// the fullest shard at or under the build-phase load factor) and places
// each entry on its probe chain in the canonical (home slot, key) order,
// so the resulting arrays depend only on the stored entries, never on
// insertion history. This is the once-per-table cost the serving path
// pays so that queries — and the persisted v2 format — get the
// two-array layout; afterwards the sharded table can be dropped.
func Compact(t *ShardedTable) (*FrozenTable, error) {
	maxCount, total := 0, 0
	for i := range t.shards {
		n := t.shards[i].t.Len()
		total += n
		if n > maxCount {
			maxCount = n
		}
	}
	perShard := FrozenSlotsPerShard(maxCount)
	shardCount := len(t.shards)
	if int64(shardCount)*int64(perShard) > maxFrozenSlots {
		return nil, fmt.Errorf("hashtab: compact layout needs %d slots, over the uint32 slot-index space", int64(shardCount)*int64(perShard))
	}
	keys := make([]uint64, shardCount*perShard)
	vals := make([]uint16, shardCount*perShard)
	ft, err := NewFrozen(keys, vals, shardCount, total)
	if err != nil {
		return nil, err
	}
	eks := make([]uint64, 0, maxCount)
	evs := make([]uint16, 0, maxCount)
	for i := range t.shards {
		eks, evs = eks[:0], evs[:0]
		t.shards[i].t.ForEach(func(k uint64, v uint16) bool {
			eks = append(eks, k)
			evs = append(evs, v)
			return true
		})
		PlaceShardCanonical(eks, evs, keys[i*perShard:(i+1)*perShard], vals[i*perShard:(i+1)*perShard])
	}
	return ft, nil
}

// CompactSplit lays explicit (key, value) entries — the contents of one
// split range — into the frozen layout: shardCount uniform shards sized
// to keep the fullest at or under the build load factor, inside range
// splitIdx of splitN. Every key must hash into the owned range and keys
// must be unique; both hold when the entries come from one range of an
// existing table, which is the store splitter's contract.
func CompactSplit(keys []uint64, vals []uint16, shardCount, splitN, splitIdx int) (*FrozenTable, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("hashtab: split entry arrays have lengths %d/%d", len(keys), len(vals))
	}
	if shardCount < 1 || shardCount&(shardCount-1) != 0 ||
		splitN < 1 || splitN&(splitN-1) != 0 ||
		int64(shardCount)*int64(splitN) > 1<<16 || splitIdx < 0 || splitIdx >= splitN {
		return nil, fmt.Errorf("hashtab: invalid split geometry %d×%d[%d]", shardCount, splitN, splitIdx)
	}
	shift := uint(64 - bits.TrailingZeros(uint(shardCount*splitN)))
	base := uint64(splitIdx) * uint64(shardCount)
	perShardCount := make([]int, shardCount)
	maxCount := 0
	for _, k := range keys {
		shard := (Hash64Shift(k) >> shift) - base
		if shard >= uint64(shardCount) {
			return nil, fmt.Errorf("hashtab: key %#x hashes outside split %d/%d", k, splitIdx, splitN)
		}
		perShardCount[shard]++
		if perShardCount[shard] > maxCount {
			maxCount = perShardCount[shard]
		}
	}
	perShard := FrozenSlotsPerShard(maxCount)
	if int64(shardCount)*int64(perShard) > maxFrozenSlots {
		return nil, fmt.Errorf("hashtab: split layout needs %d slots, over the uint32 slot-index space", int64(shardCount)*int64(perShard))
	}
	slotKeys := make([]uint64, shardCount*perShard)
	slotVals := make([]uint16, shardCount*perShard)
	ft, err := NewFrozenSplit(slotKeys, slotVals, shardCount, len(keys), splitN, splitIdx)
	if err != nil {
		return nil, err
	}
	// Group the entries by shard (counting sort over the counts already
	// gathered above), then lay each shard canonically.
	starts := make([]int, shardCount+1)
	for s := 0; s < shardCount; s++ {
		starts[s+1] = starts[s] + perShardCount[s]
	}
	cursor := append([]int(nil), starts[:shardCount]...)
	gk := make([]uint64, len(keys))
	gv := make([]uint16, len(vals))
	for i, k := range keys {
		shard := (Hash64Shift(k) >> shift) - base
		gk[cursor[shard]] = k
		gv[cursor[shard]] = vals[i]
		cursor[shard]++
	}
	for s := 0; s < shardCount; s++ {
		PlaceShardCanonical(gk[starts[s]:starts[s+1]], gv[starts[s]:starts[s+1]],
			slotKeys[s*perShard:(s+1)*perShard], slotVals[s*perShard:(s+1)*perShard])
	}
	return ft, nil
}

// Lookup returns the value stored under key and whether it is present.
// Key 0 is never present. Lock-free and allocation-free.
func (t *FrozenTable) Lookup(key uint64) (uint16, bool) {
	if key == 0 {
		return 0, false
	}
	h := Hash64Shift(key)
	shard := (h >> t.shardShift) - t.shardBase
	if shard >= uint64(t.shardCount) {
		// Outside the owned split range (unsigned wrap catches below-base
		// too). For a full table this branch is dead: shard < shardCount
		// by construction.
		return 0, false
	}
	base := shard << t.slotLog
	mask := t.slotMask
	i := h & mask
	// Geometry proof for the unchecked loads: base ≤ (shardCount−1)<<slotLog
	// and i ≤ mask < 1<<slotLog, so base+i < shardCount<<slotLog = len(keys).
	for n := uint64(0); n <= mask; n++ {
		j := uintptr(base + i)
		k := *(*uint64)(unsafe.Add(t.keysPtr, j*8))
		if k == key {
			return *(*uint16)(unsafe.Add(t.valsPtr, j*2)), true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & mask
	}
	return 0, false
}

// Contains reports whether key is present.
func (t *FrozenTable) Contains(key uint64) bool {
	_, ok := t.Lookup(key)
	return ok
}

// SlotOf returns the global slot number holding key, for building the
// persisted per-level slot index.
func (t *FrozenTable) SlotOf(key uint64) (uint32, bool) {
	if key == 0 {
		return 0, false
	}
	h := Hash64Shift(key)
	shard := (h >> t.shardShift) - t.shardBase
	if shard >= uint64(t.shardCount) {
		return 0, false
	}
	base := shard << t.slotLog
	mask := t.slotMask
	i := h & mask
	for n := uint64(0); n <= mask; n++ {
		j := base + i
		k := t.keys[j]
		if k == key {
			return uint32(j), true
		}
		if k == 0 {
			return 0, false
		}
		i = (i + 1) & mask
	}
	return 0, false
}

// KeyAt returns the key stored in a global slot (0 when empty). The slot
// is masked into range, so a corrupt persisted index cannot read outside
// the arrays.
func (t *FrozenTable) KeyAt(slot uint32) uint64 {
	return t.keys[uint64(slot)&uint64(len(t.keys)-1)]
}

// ValAt returns the value stored in a global slot.
func (t *FrozenTable) ValAt(slot uint32) uint16 {
	return t.vals[uint64(slot)&uint64(len(t.vals)-1)]
}

// Len returns the number of stored entries.
func (t *FrozenTable) Len() int { return t.count }

// Slots returns the total slot count (a power of two).
func (t *FrozenTable) Slots() int { return len(t.keys) }

// ShardCount returns the number of uniform shards this table holds
// (for a split table, the shards of its range only).
func (t *FrozenTable) ShardCount() int { return t.shardCount }

// SplitN returns how many equal high-hash ranges the full key space is
// divided into (1 for a full table) and which range this table holds.
func (t *FrozenTable) SplitN() (n, idx int) {
	n = (1 << (64 - t.shardShift)) / t.shardCount
	return n, int(t.shardBase) / t.shardCount
}

// OwnsKey reports whether key's hash falls in this table's split range.
// Always true for a full table.
func (t *FrozenTable) OwnsKey(key uint64) bool {
	shard := (Hash64Shift(key) >> t.shardShift) - t.shardBase
	return shard < uint64(t.shardCount)
}

// SlotsPerShard returns the per-shard slot count.
func (t *FrozenTable) SlotsPerShard() int { return 1 << t.slotLog }

// LoadFactor returns entries/slots.
func (t *FrozenTable) LoadFactor() float64 { return float64(t.count) / float64(len(t.keys)) }

// MemoryBytes returns the footprint of the backing arrays (8-byte key +
// 2-byte value per slot). For a memory-mapped table this is the mapped
// size — file-backed, shared between processes, and evictable — not
// process heap; compare Table.MemoryBytes, which is always heap.
func (t *FrozenTable) MemoryBytes() int64 { return int64(len(t.keys)) * 10 }

// RawKeys exposes the backing key array for serialization. Callers must
// not mutate it.
func (t *FrozenTable) RawKeys() []uint64 { return t.keys }

// RawVals exposes the backing value array for serialization. Callers
// must not mutate it.
func (t *FrozenTable) RawVals() []uint16 { return t.vals }

// ForEach calls fn for every (key, value) pair in slot order, stopping
// early if fn returns false.
func (t *FrozenTable) ForEach(fn func(key uint64, val uint16) bool) {
	for i, k := range t.keys {
		if k != 0 {
			if !fn(k, t.vals[i]) {
				return
			}
		}
	}
}

// ComputeStats scans the table and returns probe-chain statistics,
// comparable with Table.ComputeStats.
func (t *FrozenTable) ComputeStats() Stats {
	s := Stats{
		Entries:     t.count,
		Slots:       len(t.keys),
		LoadFactor:  t.LoadFactor(),
		MemoryBytes: t.MemoryBytes(),
	}
	if t.count == 0 {
		return s
	}
	total := 0
	for j, k := range t.keys {
		if k == 0 {
			continue
		}
		h := Hash64Shift(k)
		home := h & t.slotMask
		dist := int((uint64(j) - home) & t.slotMask)
		chain := dist + 1
		total += chain
		if chain > s.MaxChain {
			s.MaxChain = chain
		}
	}
	s.AvgChain = float64(total) / float64(s.Entries)
	return s
}

// SetMapped records the backing file mapping of a memory-mapped table so
// Residency can report which fraction of it is page-cache resident.
func (t *FrozenTable) SetMapped(b []byte) {
	t.lifeMu.Lock()
	t.mapped = b
	t.lifeMu.Unlock()
}

// Residency reports the mmap page-residency of the table: how many of
// the mapped bytes are currently resident in the page cache (mincore),
// and the total mapped size. With mmap serving the resident set is
// workload-driven — the shard of the key space a process is routed makes
// up its hot pages — so this is the capacity-planning signal for how
// much of a table a host actually holds hot. ok is false when the table
// is not memory-mapped or the platform provides no residency syscall
// (the probe degrades to a graceful no-op there).
func (t *FrozenTable) Residency() (resident, mapped int64, ok bool) {
	// The probe runs under lifeMu so a concurrent Close cannot unmap the
	// region mid-mincore (and the address range cannot be recycled into
	// someone else's mapping under us).
	t.lifeMu.Lock()
	defer t.lifeMu.Unlock()
	if t.mapped == nil {
		return 0, 0, false
	}
	mapped = int64(len(t.mapped))
	resident, err := residentBytes(t.mapped)
	if err != nil {
		return 0, mapped, false
	}
	return resident, mapped, true
}

// SetCloser attaches a release hook (e.g. munmap of the backing file).
func (t *FrozenTable) SetCloser(fn func() error) {
	t.lifeMu.Lock()
	t.closer = fn
	t.lifeMu.Unlock()
}

// Close releases the backing resources, if any. The table must not be
// queried afterwards. Close is idempotent and safe against a concurrent
// Residency probe (the release runs under the lifecycle lock).
func (t *FrozenTable) Close() error {
	t.lifeMu.Lock()
	defer t.lifeMu.Unlock()
	if t.closer == nil {
		return nil
	}
	fn := t.closer
	t.closer = nil
	t.mapped = nil
	return fn()
}
