package hashtab

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardedTable is a concurrent variant of Table: 2^s independent Table
// shards, each guarded by its own mutex, with keys routed to shards by
// the high bits of the Wang hash (the inner tables consume the low bits
// for slot selection, so the two never alias).
//
// The table supports two phases, mirroring the paper's workflow:
//
//   - Build (breadth-first search): many goroutines Insert/InsertBatch
//     concurrently; contention is limited to same-shard collisions, and
//     InsertBatch amortizes lock traffic by grouping a whole batch of
//     keys per shard under one lock acquisition.
//   - Query (search-and-lookup synthesis): after Freeze, Lookup and
//     Contains skip the shard mutexes entirely — the table is an
//     immutable frozen view and reads are lock-free, which is what lets
//     the meet-in-the-middle stage fan out across cores without a
//     shared-lock bottleneck.
//
// Mutating a frozen table is permitted only while no other goroutine is
// reading it (tests use this to corrupt entries deliberately); concurrent
// write + frozen read is a data race by design.
type ShardedTable struct {
	shards []tableShard
	// shift is 64 − log2(len(shards)): shard index = hash >> shift.
	shift  uint
	frozen atomic.Bool
}

// tableShard pads each mutex+table pair to a cache line so shard locks
// on neighbouring indices do not false-share.
type tableShard struct {
	mu sync.Mutex
	t  *Table
	_  [64 - 16]byte
}

// DefaultShardCount returns the shard count NewSharded uses: the
// smallest power of two ≥ 4 × GOMAXPROCS, clamped to [8, 256]. The 4×
// oversubscription keeps the probability of two workers colliding on one
// shard low without ballooning the per-shard fixed cost.
func DefaultShardCount() int {
	n := 4 * runtime.GOMAXPROCS(0)
	s := 8
	for s < n && s < 256 {
		s <<= 1
	}
	return s
}

// NewSharded returns a concurrent table pre-sized to hold capacityHint
// entries across DefaultShardCount() shards.
func NewSharded(capacityHint int) *ShardedTable {
	return NewShardedWithShards(capacityHint, DefaultShardCount())
}

// NewShardedWithShards is NewSharded with an explicit shard count,
// rounded up to a power of two and clamped to [1, 1<<16].
func NewShardedWithShards(capacityHint, shardCount int) *ShardedTable {
	n := 1
	for n < shardCount && n < 1<<16 {
		n <<= 1
	}
	if capacityHint < 1 {
		capacityHint = 1
	}
	perShard := (capacityHint + n - 1) / n
	t := &ShardedTable{
		shards: make([]tableShard, n),
		shift:  uint(64 - log2(n)),
	}
	for i := range t.shards {
		t.shards[i].t = New(perShard)
	}
	return t
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// shardOf routes a key by the top bits of its Wang hash. A shift of 64
// (single shard) yields index 0 because Go defines over-wide shifts to 0.
func (t *ShardedTable) shardOf(key uint64) *tableShard {
	return &t.shards[Hash64Shift(key)>>t.shift]
}

// ShardCount returns the number of shards (a power of two).
func (t *ShardedTable) ShardCount() int { return len(t.shards) }

// Freeze marks the table immutable: subsequent Lookup/Contains calls are
// lock-free. Call once the build phase has fully completed (after any
// worker synchronization barrier).
func (t *ShardedTable) Freeze() { t.frozen.Store(true) }

// Frozen reports whether Freeze has been called.
func (t *ShardedTable) Frozen() bool { return t.frozen.Load() }

// Insert stores val under key if absent (see Table.Insert), taking the
// owning shard's lock. Safe for concurrent use.
func (t *ShardedTable) Insert(key uint64, val uint16) (existing uint16, inserted bool) {
	sh := t.shardOf(key)
	sh.mu.Lock()
	existing, inserted = sh.t.Insert(key, val)
	sh.mu.Unlock()
	return existing, inserted
}

// batchScratch is the reusable workspace of one InsertBatch call,
// pooled so the steady-state BFS flush loop allocates nothing.
type batchScratch struct {
	order   []int32 // batch indices, counting-sorted by shard
	offsets []int32 // per-shard cursor/prefix sums (len shards+1)
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// InsertBatch inserts keys[i] → vals[i] for every i, recording per-entry
// outcomes in inserted (true where the key was newly added). Entries are
// grouped by shard with one counting-sort pass — O(len(keys) + shards) —
// so each shard lock is taken at most once per call, the
// lock-amortization that makes batched parallel BFS insertion scale.
// Duplicate keys within one batch resolve in index order (the first
// occurrence wins). Returns the number of newly inserted entries.
func (t *ShardedTable) InsertBatch(keys []uint64, vals []uint16, inserted []bool) int {
	if len(vals) != len(keys) || len(inserted) != len(keys) {
		panic("hashtab: InsertBatch slice lengths differ")
	}
	if len(keys) == 0 {
		return 0
	}
	sc := scratchPool.Get().(*batchScratch)
	if cap(sc.order) < len(keys) {
		sc.order = make([]int32, len(keys))
	}
	if cap(sc.offsets) < len(t.shards)+1 {
		sc.offsets = make([]int32, len(t.shards)+1)
	}
	order := sc.order[:len(keys)]
	offsets := sc.offsets[:len(t.shards)+1]
	for i := range offsets {
		offsets[i] = 0
	}
	// Counting sort: bucket sizes, prefix sums, then scatter the batch
	// indices. offsets[s] ends as the start of shard s's run; a second
	// pass advances it to the end, leaving offsets shifted one shard up.
	for _, key := range keys {
		offsets[int(Hash64Shift(key)>>t.shift)+1]++
	}
	for s := 1; s <= len(t.shards); s++ {
		offsets[s] += offsets[s-1]
	}
	for i, key := range keys {
		id := int(Hash64Shift(key) >> t.shift)
		order[offsets[id]] = int32(i)
		offsets[id]++
	}
	n := 0
	start := int32(0)
	for s := range t.shards {
		end := offsets[s]
		if end == start {
			continue
		}
		sh := &t.shards[s]
		sh.mu.Lock()
		for _, i := range order[start:end] {
			_, ins := sh.t.Insert(keys[i], vals[i])
			inserted[i] = ins
			if ins {
				n++
			}
		}
		sh.mu.Unlock()
		start = end
	}
	scratchPool.Put(sc)
	return n
}

// ContainsBatchSorted records presence for a run-sorted batch: keys must
// arrive grouped by ascending shard (ascending Hash64Shift(key)>>shift —
// the order an external merge naturally produces, since spill runs are
// sorted by (shard, key)). Each shard's lock is then taken at most once
// per call and released before the next group, so a dedup pass can probe
// millions of candidates against prior levels without per-key lock
// traffic. present[i] is set for every i; returns the number present.
// Panics if the batch violates the shard ordering contract.
func (t *ShardedTable) ContainsBatchSorted(keys []uint64, present []bool) int {
	if len(present) != len(keys) {
		panic("hashtab: ContainsBatchSorted slice lengths differ")
	}
	frozen := t.frozen.Load()
	n := 0
	for start := 0; start < len(keys); {
		shard := int(Hash64Shift(keys[start]) >> t.shift)
		end := start + 1
		for end < len(keys) && int(Hash64Shift(keys[end])>>t.shift) == shard {
			end++
		}
		if end < len(keys) && int(Hash64Shift(keys[end])>>t.shift) < shard {
			panic("hashtab: ContainsBatchSorted batch not sorted by shard")
		}
		sh := &t.shards[shard]
		if !frozen {
			sh.mu.Lock()
		}
		for i := start; i < end; i++ {
			_, ok := sh.t.Lookup(keys[i])
			present[i] = ok
			if ok {
				n++
			}
		}
		if !frozen {
			sh.mu.Unlock()
		}
		start = end
	}
	return n
}

// Update overwrites the value under an existing key, inserting if absent,
// under the owning shard's lock.
func (t *ShardedTable) Update(key uint64, val uint16) {
	sh := t.shardOf(key)
	sh.mu.Lock()
	sh.t.Update(key, val)
	sh.mu.Unlock()
}

// Lookup returns the value stored under key and whether it is present.
// Lock-free once the table is frozen.
func (t *ShardedTable) Lookup(key uint64) (uint16, bool) {
	sh := t.shardOf(key)
	if t.frozen.Load() {
		return sh.t.Lookup(key)
	}
	sh.mu.Lock()
	v, ok := sh.t.Lookup(key)
	sh.mu.Unlock()
	return v, ok
}

// Contains reports whether key is present.
func (t *ShardedTable) Contains(key uint64) bool {
	_, ok := t.Lookup(key)
	return ok
}

// Len returns the number of stored entries across all shards.
func (t *ShardedTable) Len() int {
	n := 0
	frozen := t.frozen.Load()
	for i := range t.shards {
		sh := &t.shards[i]
		if frozen {
			n += sh.t.Len()
			continue
		}
		sh.mu.Lock()
		n += sh.t.Len()
		sh.mu.Unlock()
	}
	return n
}

// Slots returns the total slot count across shards.
func (t *ShardedTable) Slots() int {
	n := 0
	for i := range t.shards {
		n += t.shards[i].t.Slots()
	}
	return n
}

// LoadFactor returns entries/slots over the whole table.
func (t *ShardedTable) LoadFactor() float64 {
	return float64(t.Len()) / float64(t.Slots())
}

// MemoryBytes returns the approximate footprint of all shard backing
// arrays.
func (t *ShardedTable) MemoryBytes() int64 {
	var n int64
	for i := range t.shards {
		n += t.shards[i].t.MemoryBytes()
	}
	return n
}

// ForEach calls fn for every (key, value) pair in unspecified order,
// stopping early if fn returns false. Not safe concurrently with writers.
func (t *ShardedTable) ForEach(fn func(key uint64, val uint16) bool) {
	for i := range t.shards {
		stop := false
		t.shards[i].t.ForEach(func(k uint64, v uint16) bool {
			if !fn(k, v) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// ComputeStats aggregates probe-chain statistics over all shards.
func (t *ShardedTable) ComputeStats() Stats {
	agg := Stats{}
	var chainSum float64
	for i := range t.shards {
		s := t.shards[i].t.ComputeStats()
		agg.Entries += s.Entries
		agg.Slots += s.Slots
		agg.MemoryBytes += s.MemoryBytes
		chainSum += s.AvgChain * float64(s.Entries)
		if s.MaxChain > agg.MaxChain {
			agg.MaxChain = s.MaxChain
		}
	}
	if agg.Slots > 0 {
		agg.LoadFactor = float64(agg.Entries) / float64(agg.Slots)
	}
	if agg.Entries > 0 {
		agg.AvgChain = chainSum / float64(agg.Entries)
	}
	return agg
}
