package hashtab

import (
	"math/rand"
	"testing"
)

// fillSharded builds a sharded table with n random distinct keys.
func fillSharded(t testing.TB, n int, seed int64) (*ShardedTable, map[uint64]uint16) {
	rng := rand.New(rand.NewSource(seed))
	st := NewShardedWithShards(n, 8)
	want := make(map[uint64]uint16, n)
	for len(want) < n {
		k := rng.Uint64()
		if k == 0 {
			continue
		}
		if _, dup := want[k]; dup {
			continue
		}
		v := uint16(rng.Intn(1 << 16))
		want[k] = v
		st.Insert(k, v)
	}
	st.Freeze()
	return st, want
}

func TestCompactMatchesSharded(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 5000} {
		st, want := fillSharded(t, n, int64(n)+1)
		ft, err := Compact(st)
		if err != nil {
			t.Fatal(err)
		}
		if ft.Len() != st.Len() {
			t.Fatalf("n=%d: frozen len %d, sharded %d", n, ft.Len(), st.Len())
		}
		if ft.ShardCount() != st.ShardCount() {
			t.Fatalf("n=%d: shard count %d vs %d", n, ft.ShardCount(), st.ShardCount())
		}
		if got := ft.ShardCount() * ft.SlotsPerShard(); got != ft.Slots() {
			t.Fatalf("n=%d: %d×%d shards ≠ %d slots", n, ft.ShardCount(), ft.SlotsPerShard(), ft.Slots())
		}
		for k, v := range want {
			got, ok := ft.Lookup(k)
			if !ok || got != v {
				t.Fatalf("n=%d: Lookup(%#x) = %d,%v want %d", n, k, got, ok, v)
			}
			slot, ok := ft.SlotOf(k)
			if !ok || ft.KeyAt(slot) != k || ft.ValAt(slot) != v {
				t.Fatalf("n=%d: SlotOf(%#x) inconsistent", n, k)
			}
		}
		// Misses must agree with the source, and key 0 is never present.
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 1000; i++ {
			k := rng.Uint64()
			_, wantOK := want[k]
			if _, ok := ft.Lookup(k); ok != wantOK {
				t.Fatalf("n=%d: Lookup(%#x) presence %v, want %v", n, k, ok, wantOK)
			}
		}
		if ft.Contains(0) {
			t.Fatal("key 0 reported present")
		}
		// Iteration covers exactly the stored set.
		seen := 0
		ft.ForEach(func(k uint64, v uint16) bool {
			if want[k] != v {
				t.Fatalf("ForEach yielded %#x→%d, want %d", k, v, want[k])
			}
			seen++
			return true
		})
		if seen != n {
			t.Fatalf("ForEach yielded %d entries, want %d", seen, n)
		}
		if ft.LoadFactor() > maxLoadFactor {
			t.Fatalf("n=%d: compact load factor %.3f above build bound", n, ft.LoadFactor())
		}
	}
}

func TestFrozenStats(t *testing.T) {
	st, _ := fillSharded(t, 3000, 3)
	ft, err := Compact(st)
	if err != nil {
		t.Fatal(err)
	}
	s := ft.ComputeStats()
	if s.Entries != 3000 || s.Slots != ft.Slots() {
		t.Fatalf("stats %+v", s)
	}
	if s.AvgChain < 1 || s.MaxChain < 1 {
		t.Fatalf("degenerate probe chains: %+v", s)
	}
	if s.MemoryBytes != int64(ft.Slots())*10 {
		t.Fatalf("memory bytes %d", s.MemoryBytes)
	}
}

func TestNewFrozenRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		name   string
		keys   int
		vals   int
		shards int
		count  int
	}{
		{"empty", 0, 0, 1, 0},
		{"mismatched", 32, 16, 1, 0},
		{"shardsNonPow2", 48, 48, 3, 0},
		{"shardsHuge", 1 << 20, 1 << 20, 1 << 17, 0},
		{"perShardTiny", 8, 8, 1, 0},
		{"perShardNonPow2", 96, 96, 2, 0},
		{"countOverSlots", 32, 32, 1, 33},
		{"countNegative", 32, 32, 1, -1},
	}
	for _, tc := range cases {
		_, err := NewFrozen(make([]uint64, tc.keys), make([]uint16, tc.vals), tc.shards, tc.count)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestFrozenProbeTerminatesOnFullShard: a corrupt file can present a
// shard with no empty slot; the bounded probe must report a miss rather
// than cycle forever.
func TestFrozenProbeTerminatesOnFullShard(t *testing.T) {
	keys := make([]uint64, 16)
	vals := make([]uint16, 16)
	for i := range keys {
		keys[i] = uint64(i + 1) // all slots occupied, none matching
	}
	ft, err := NewFrozen(keys, vals, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ft.Lookup(0xDEADBEEF); ok {
		t.Fatal("found a key that is not there")
	}
}

func TestFrozenKeyAtMasksOutOfRange(t *testing.T) {
	st, _ := fillSharded(t, 10, 4)
	ft, err := Compact(st)
	if err != nil {
		t.Fatal(err)
	}
	// Any slot id, however corrupt, must stay in bounds.
	_ = ft.KeyAt(^uint32(0))
	_ = ft.ValAt(^uint32(0))
}

func TestFrozenCloser(t *testing.T) {
	st, _ := fillSharded(t, 5, 5)
	ft, err := Compact(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.Close(); err != nil {
		t.Fatalf("close without closer: %v", err)
	}
	calls := 0
	ft.SetCloser(func() error { calls++; return nil })
	if err := ft.Close(); err != nil || calls != 1 {
		t.Fatalf("close: %v, calls %d", err, calls)
	}
	if err := ft.Close(); err != nil || calls != 1 {
		t.Fatalf("second close: %v, calls %d", err, calls)
	}
}

// BenchmarkFrozenLookup compares the branch-lean frozen probe against
// the sharded read path it replaces on the serving side.
func BenchmarkFrozenLookup(b *testing.B) {
	st, want := fillSharded(b, 1<<16, 6)
	ft, err := Compact(st)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]uint64, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	b.Run("sharded", func(b *testing.B) {
		b.ReportAllocs()
		acc := uint16(0)
		for i := 0; i < b.N; i++ {
			v, _ := st.Lookup(keys[i%len(keys)])
			acc ^= v
		}
		_ = acc
	})
	b.Run("frozen", func(b *testing.B) {
		b.ReportAllocs()
		acc := uint16(0)
		for i := 0; i < b.N; i++ {
			v, _ := ft.Lookup(keys[i%len(keys)])
			acc ^= v
		}
		_ = acc
	})
}
