package hashtab

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookupBasic(t *testing.T) {
	tab := New(16)
	if _, ok := tab.Lookup(42); ok {
		t.Fatal("empty table reports a key")
	}
	if _, inserted := tab.Insert(42, 7); !inserted {
		t.Fatal("first insert reported duplicate")
	}
	if v, ok := tab.Lookup(42); !ok || v != 7 {
		t.Fatalf("Lookup(42) = %d,%v", v, ok)
	}
	if existing, inserted := tab.Insert(42, 9); inserted || existing != 7 {
		t.Fatalf("duplicate insert: existing=%d inserted=%v", existing, inserted)
	}
	if v, _ := tab.Lookup(42); v != 7 {
		t.Fatal("duplicate insert overwrote value")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
}

func TestUpdate(t *testing.T) {
	tab := New(4)
	tab.Update(5, 1)
	tab.Update(5, 2)
	if v, ok := tab.Lookup(5); !ok || v != 2 {
		t.Fatalf("Update did not overwrite: %d,%v", v, ok)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d after double update", tab.Len())
	}
}

func TestZeroKeyPanics(t *testing.T) {
	tab := New(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Insert(0, _) did not panic")
		}
	}()
	tab.Insert(0, 1)
}

func TestZeroKeyLookupIsAbsent(t *testing.T) {
	tab := New(4)
	if _, ok := tab.Lookup(0); ok {
		t.Fatal("Lookup(0) reported present")
	}
}

func TestDifferentialAgainstMap(t *testing.T) {
	for _, kind := range []HashKind{Wang, WeakMultiplicative} {
		rng := rand.New(rand.NewSource(1))
		tab := NewWithHash(8, kind)
		ref := map[uint64]uint16{}
		for op := 0; op < 50000; op++ {
			key := uint64(rng.Intn(5000) + 1)
			switch rng.Intn(3) {
			case 0:
				val := uint16(rng.Intn(1 << 16))
				if prev, ok := ref[key]; ok {
					existing, inserted := tab.Insert(key, val)
					if inserted || existing != prev {
						t.Fatalf("kind %d: Insert(%d) = %d,%v; want %d,false", kind, key, existing, inserted, prev)
					}
				} else {
					if _, inserted := tab.Insert(key, val); !inserted {
						t.Fatalf("kind %d: fresh Insert(%d) reported duplicate", kind, key)
					}
					ref[key] = val
				}
			case 1:
				val := uint16(rng.Intn(1 << 16))
				tab.Update(key, val)
				ref[key] = val
			default:
				got, ok := tab.Lookup(key)
				want, wantOK := ref[key]
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("kind %d: Lookup(%d) = %d,%v; want %d,%v", kind, key, got, ok, want, wantOK)
				}
			}
		}
		if tab.Len() != len(ref) {
			t.Fatalf("kind %d: Len = %d, want %d", kind, tab.Len(), len(ref))
		}
	}
}

func TestGrowthPreservesEntries(t *testing.T) {
	tab := New(1) // force many growths
	const n = 100000
	rng := rand.New(rand.NewSource(2))
	keys := make(map[uint64]uint16, n)
	for len(keys) < n {
		k := rng.Uint64()
		if k == 0 {
			continue
		}
		keys[k] = uint16(k % 65521)
	}
	for k, v := range keys {
		tab.Insert(k, v)
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	for k, v := range keys {
		got, ok := tab.Lookup(k)
		if !ok || got != v {
			t.Fatalf("after growth Lookup(%d) = %d,%v; want %d", k, got, ok, v)
		}
	}
	if lf := tab.LoadFactor(); lf > maxLoadFactor {
		t.Fatalf("load factor %.3f exceeds limit", lf)
	}
}

func TestPresizedTableDoesNotGrow(t *testing.T) {
	const n = 10000
	tab := New(n)
	slots := tab.Slots()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		k := rng.Uint64() | 1
		tab.Insert(k, 0)
	}
	if tab.Slots() != slots {
		t.Fatalf("pre-sized table grew from %d to %d slots", slots, tab.Slots())
	}
}

func TestForEach(t *testing.T) {
	tab := New(16)
	want := map[uint64]uint16{10: 1, 20: 2, 30: 3}
	for k, v := range want {
		tab.Insert(k, v)
	}
	got := map[uint64]uint16{}
	tab.ForEach(func(k uint64, v uint16) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("ForEach got[%d] = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	visits := 0
	tab.ForEach(func(uint64, uint16) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("ForEach early stop visited %d", visits)
	}
}

func TestStatsOnEmptyTable(t *testing.T) {
	s := New(16).ComputeStats()
	if s.Entries != 0 || s.MaxChain != 0 || s.AvgChain != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestStatsReasonable(t *testing.T) {
	tab := New(1 << 16)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 40000; i++ {
		tab.Insert(rng.Uint64()|1, 0)
	}
	s := tab.ComputeStats()
	if s.Entries != tab.Len() || s.Slots != tab.Slots() {
		t.Fatalf("stats mismatch: %+v", s)
	}
	if s.AvgChain < 1 {
		t.Fatalf("average chain %.2f below 1", s.AvgChain)
	}
	if s.MaxChain < 1 || s.MaxChain > s.Slots {
		t.Fatalf("absurd max chain %d", s.MaxChain)
	}
	// At load ≤ 0.85 with a good hash, average chains stay small. The
	// paper's Table 2 sees 9.18 at load 0.84; allow generous slack.
	if s.AvgChain > 20 {
		t.Fatalf("average chain %.2f unreasonably long for load %.2f", s.AvgChain, s.LoadFactor)
	}
}

func TestWangBeatsWeakHashOnStructuredKeys(t *testing.T) {
	// Packed permutations are highly structured. The ablation claim: the
	// paper's hash64shift keeps probe chains shorter than a single
	// multiplicative mix on exactly this key distribution. Use sequential
	// small keys as a proxy for structure.
	wang := NewWithHash(1<<15, Wang)
	weak := NewWithHash(1<<15, WeakMultiplicative)
	for i := uint64(1); i <= 20000; i++ {
		key := i << 40 // cluster all entropy in high bits
		wang.Insert(key, 0)
		weak.Insert(key, 0)
	}
	ws := wang.ComputeStats()
	ks := weak.ComputeStats()
	if ws.AvgChain > 10 {
		t.Fatalf("Wang hash degenerated on structured keys: %+v", ws)
	}
	_ = ks // the weak hash may or may not degenerate here; it exists for benches
}

func TestHash64ShiftIsBijectiveOnSample(t *testing.T) {
	// hash64shift is composed of invertible steps; no two sampled keys
	// may collide on the full 64-bit output.
	rng := rand.New(rand.NewSource(5))
	seen := map[uint64]uint64{}
	for i := 0; i < 200000; i++ {
		k := rng.Uint64()
		h := Hash64Shift(k)
		if prev, ok := seen[h]; ok && prev != k {
			t.Fatalf("collision: %d and %d both hash to %d", prev, k, h)
		}
		seen[h] = k
	}
}

func TestQuickInsertedAlwaysFound(t *testing.T) {
	f := func(keys []uint64) bool {
		tab := New(4)
		inserted := map[uint64]uint16{}
		for i, k := range keys {
			if k == 0 {
				continue
			}
			v := uint16(i)
			if _, ok := inserted[k]; !ok {
				tab.Insert(k, v)
				inserted[k] = v
			}
		}
		for k, v := range inserted {
			got, ok := tab.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return tab.Len() == len(inserted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KB"},
		{3 << 20, "3.00 MB"},
		{32 << 30, "32.00 GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.n); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tab := New(1 << 20)
	rng := rand.New(rand.NewSource(6))
	keys := make([]uint64, 1<<20)
	for i := range keys {
		keys[i] = rng.Uint64() | 1
		tab.Insert(keys[i], uint16(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc uint16
	for i := 0; i < b.N; i++ {
		v, _ := tab.Lookup(keys[i&(1<<20-1)])
		acc ^= v
	}
	_ = acc
}

func BenchmarkLookupMiss(b *testing.B) {
	tab := New(1 << 20)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1<<20; i++ {
		tab.Insert(rng.Uint64()|1, uint16(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc uint16
	for i := 0; i < b.N; i++ {
		v, _ := tab.Lookup(uint64(i)*2654435761 + 1)
		acc ^= v
	}
	_ = acc
}

func BenchmarkInsert(b *testing.B) {
	tab := New(b.N)
	rng := rand.New(rand.NewSource(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Insert(rng.Uint64()|1, uint16(i))
	}
}

func BenchmarkHash64Shift(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Hash64Shift(uint64(i))
	}
	_ = acc
}
