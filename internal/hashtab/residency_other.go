//go:build !linux

package hashtab

import "errors"

// residentBytes degrades to a graceful no-op on platforms without a
// mincore syscall surface in the standard syscall package; Residency
// reports ok=false and serving stats simply omit the figure.
func residentBytes([]byte) (int64, error) {
	return 0, errors.New("hashtab: page residency not supported on this platform")
}
