//go:build linux

package hashtab

import (
	"os"
	"syscall"
	"unsafe"
)

// residentBytes asks the kernel (mincore) how many bytes of the mapping
// are resident in the page cache. b must be the page-aligned mapping
// returned by mmap. The cost is one syscall plus a byte per page in the
// vector, so a stats endpoint can afford to call it on every scrape.
func residentBytes(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, nil
	}
	page := os.Getpagesize()
	vec := make([]byte, (len(b)+page-1)/page)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, errno
	}
	var pages int64
	for _, v := range vec {
		// The low bit is the residency flag; the rest is unspecified.
		pages += int64(v & 1)
	}
	return min(pages*int64(page), int64(len(b))), nil
}
