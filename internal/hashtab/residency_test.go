package hashtab

import (
	"sync"
	"testing"
)

// TestResidencyCloseRace: a stats scrape probing page residency must be
// safe against a concurrent Close unmapping the table — the lifecycle
// surface is serialized, so under -race this stays silent and after
// Close the probe reports not-mapped.
func TestResidencyCloseRace(t *testing.T) {
	ft, err := NewFrozen(make([]uint64, 16), make([]uint16, 16), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ft.SetMapped(make([]byte, 1<<16))
	closed := false
	ft.SetCloser(func() error { closed = true; return nil })

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ft.Residency()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		ft.Close()
	}()
	wg.Wait()
	if !closed {
		t.Fatal("closer did not run")
	}
	if _, _, ok := ft.Residency(); ok {
		t.Fatal("residency reported on a closed table")
	}
	if err := ft.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
