package hashtab

import (
	"math/rand"
	"sync"
	"testing"
)

func shardedRandKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		for keys[i] == 0 {
			keys[i] = rng.Uint64()
		}
	}
	return keys
}

func TestShardedBasics(t *testing.T) {
	st := NewShardedWithShards(16, 8)
	if st.ShardCount() != 8 {
		t.Fatalf("shard count = %d, want 8", st.ShardCount())
	}
	keys := shardedRandKeys(5000, 1)
	ref := make(map[uint64]uint16, len(keys))
	for i, k := range keys {
		v := uint16(i)
		if _, ok := ref[k]; !ok {
			ref[k] = v
		}
		existing, inserted := st.Insert(k, v)
		if _, dup := ref[k]; dup && !inserted && existing == v {
			t.Fatalf("duplicate insert of %#x reported inserted", k)
		}
	}
	if st.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := st.Lookup(k)
		if !ok || got != v {
			t.Fatalf("Lookup(%#x) = %d,%v; want %d", k, got, ok, v)
		}
	}
	if st.Contains(0) {
		t.Fatal("key 0 reported present")
	}
	st.Update(keys[0], 9999)
	if got, _ := st.Lookup(keys[0]); got != 9999 {
		t.Fatalf("Update not visible: got %d", got)
	}
	seen := 0
	st.ForEach(func(k uint64, v uint16) bool {
		seen++
		return true
	})
	if seen != st.Len() {
		t.Fatalf("ForEach visited %d of %d", seen, st.Len())
	}
	stats := st.ComputeStats()
	if stats.Entries != st.Len() || stats.Slots != st.Slots() {
		t.Fatalf("stats mismatch: %+v", stats)
	}
}

func TestShardedInsertBatch(t *testing.T) {
	st := NewShardedWithShards(4, 4)
	keys := shardedRandKeys(1000, 2)
	// Introduce in-batch duplicates: every 10th key repeats its
	// predecessor. The first occurrence must win.
	for i := 9; i < len(keys); i += 10 {
		keys[i] = keys[i-1]
	}
	vals := make([]uint16, len(keys))
	for i := range vals {
		vals[i] = uint16(i)
	}
	inserted := make([]bool, len(keys))
	n := st.InsertBatch(keys, vals, inserted)
	distinct := make(map[uint64]int, len(keys))
	for i, k := range keys {
		if _, ok := distinct[k]; !ok {
			distinct[k] = i
		}
	}
	if n != len(distinct) || st.Len() != len(distinct) {
		t.Fatalf("InsertBatch inserted %d (Len %d), want %d", n, st.Len(), len(distinct))
	}
	for i, k := range keys {
		wantIns := distinct[k] == i
		if inserted[i] != wantIns {
			t.Fatalf("inserted[%d] = %v, want %v", i, inserted[i], wantIns)
		}
	}
	for k, i := range distinct {
		got, ok := st.Lookup(k)
		if !ok || got != uint16(i) {
			t.Fatalf("Lookup(%#x) = %d,%v; want first-writer value %d", k, got, ok, i)
		}
	}
	// A second batch of the same keys must insert nothing.
	if n := st.InsertBatch(keys, vals, inserted); n != 0 {
		t.Fatalf("re-batch inserted %d entries", n)
	}
}

// TestShardedConcurrentInserts hammers one table from many goroutines
// with overlapping key sets (run with -race). Every key must be present
// exactly once afterwards and hold one of the racing writers' values.
func TestShardedConcurrentInserts(t *testing.T) {
	st := NewSharded(1)
	keys := shardedRandKeys(20000, 3)
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vals := make([]uint16, 0, 128)
			batch := make([]uint64, 0, 128)
			ins := make([]bool, 128)
			// Each writer covers the whole key set, offset so batches
			// collide across goroutines.
			for i := range keys {
				j := (i + w*2500) % len(keys)
				batch = append(batch, keys[j])
				vals = append(vals, uint16(w))
				if len(batch) == 128 {
					st.InsertBatch(batch, vals, ins[:len(batch)])
					batch, vals = batch[:0], vals[:0]
				}
			}
			if len(batch) > 0 {
				st.InsertBatch(batch, vals, ins[:len(batch)])
			}
		}(w)
	}
	wg.Wait()
	distinct := make(map[uint64]struct{}, len(keys))
	for _, k := range keys {
		distinct[k] = struct{}{}
	}
	if st.Len() != len(distinct) {
		t.Fatalf("Len = %d after concurrent inserts, want %d", st.Len(), len(distinct))
	}
	for k := range distinct {
		v, ok := st.Lookup(k)
		if !ok || v >= writers {
			t.Fatalf("Lookup(%#x) = %d,%v after concurrent inserts", k, v, ok)
		}
	}
}

// TestShardedFrozenConcurrentLookups freezes the table and reads it from
// many goroutines (run with -race): the frozen read path takes no locks.
func TestShardedFrozenConcurrentLookups(t *testing.T) {
	st := NewSharded(1 << 10)
	keys := shardedRandKeys(4096, 4)
	for i, k := range keys {
		st.Insert(k, uint16(i))
	}
	st.Freeze()
	if !st.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += 16 {
				if !st.Contains(keys[i]) {
					errs <- "frozen lookup missed a stored key"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestShardedGrowth starts tiny and inserts far past the initial
// capacity; per-shard growth must preserve every entry.
func TestShardedGrowth(t *testing.T) {
	st := NewShardedWithShards(1, 2)
	keys := shardedRandKeys(50000, 5)
	for i, k := range keys {
		st.Insert(k, uint16(i))
	}
	for i, k := range keys {
		got, ok := st.Lookup(k)
		if !ok {
			t.Fatalf("key %#x lost after growth", k)
		}
		_ = got
		_ = i
	}
	if lf := st.LoadFactor(); lf <= 0 || lf > maxLoadFactor {
		t.Fatalf("load factor %f out of range", lf)
	}
}

// TestShardedMatchesFlat: a sharded table and a flat table fed the same
// stream must agree on every membership and value query.
func TestShardedMatchesFlat(t *testing.T) {
	st := NewSharded(64)
	flat := New(64)
	keys := shardedRandKeys(10000, 6)
	for i, k := range keys {
		v := uint16(i & 0x7FFF)
		_, si := st.Insert(k, v)
		_, fi := flat.Insert(k, v)
		if si != fi {
			t.Fatalf("insert disagreement on %#x", k)
		}
	}
	if st.Len() != flat.Len() {
		t.Fatalf("Len %d vs flat %d", st.Len(), flat.Len())
	}
	flat.ForEach(func(k uint64, v uint16) bool {
		got, ok := st.Lookup(k)
		if !ok || got != v {
			t.Fatalf("sharded disagrees with flat on %#x", k)
		}
		return true
	})
}
