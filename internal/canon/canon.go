// Package canon implements the symmetry reduction of paper §3.2: the
// equivalence of 4-bit reversible functions under simultaneous
// input/output wire relabeling (24 conjugations) and inversion, an
// almost-48× reduction of the breadth-first search frontier.
//
// The equivalence class of f is {conj(f,σ), conj(f⁻¹,σ) : σ ∈ S₄} where
// conj(f,σ) = gσ⁻¹ ∘ f ∘ gσ and gσ is the state permutation induced by
// the wire relabeling σ. The canonical representative is the minimum of
// the (up to) 48 class members under plain uint64 comparison of the
// packed word — a single unsigned comparison per candidate, exactly as in
// paper §3.3.
//
// All 24 conjugates are visited by a plain-changes (Steinhaus–Johnson–
// Trotter) walk through S₄: 23 conjugations by adjacent wire
// transpositions, each a 14-operation kernel (perm.ConjugateAdjacent).
// Together with one inversion this canonicalizes a function in well under
// a microsecond.
package canon

import (
	"fmt"

	"repro/internal/gate"
	"repro/internal/perm"
)

// SigmaCount is the number of wire relabelings, |S₄|.
const SigmaCount = 24

// MaxClassSize is the largest possible equivalence class: 24 relabelings
// × {f, f⁻¹}.
const MaxClassSize = 48

var (
	// sigmas lists the 24 wire relabelings in plain-changes order;
	// sigmas[0] is the identity.
	sigmas [SigmaCount][4]uint8
	// schedule[i] is the adjacent transposition index (0,1,2) whose
	// conjugation kernel advances the walk from position i to i+1.
	schedule [SigmaCount - 1]int
	// shuffles[s] is the state permutation gσ of sigmas[s].
	shuffles [SigmaCount]perm.Perm
	// stepTable[s][t] is the walk position reached from position s by the
	// kernel for adjacent transposition t (cumulative-shuffle tracking).
	stepTable [SigmaCount][3]int
	// inverseIdx[s] is the position holding the inverse relabeling.
	inverseIdx [SigmaCount]int
	// conjGateTable[s][gi] is the gate computing
	// Conjugate(gate.FromIndex(gi).Perm(), shuffles[s]).
	conjGateTable [SigmaCount][gate.Count]gate.Gate
)

// sjt enumerates S₄ by plain changes, returning the permutations and the
// swap positions (0, 1 or 2: the index of the left element of the swapped
// adjacent pair) between consecutive permutations.
func sjt() (perms [][4]uint8, swaps []int) {
	arr := [4]uint8{0, 1, 2, 3}
	dir := [4]int{-1, -1, -1, -1}
	perms = append(perms, arr)
	for {
		// Find the largest mobile element (one whose direction points at a
		// smaller neighbor).
		mobile := -1
		for i := 0; i < 4; i++ {
			j := i + dir[i]
			if j < 0 || j > 3 || arr[j] > arr[i] {
				continue
			}
			if mobile < 0 || arr[i] > arr[mobile] {
				mobile = i
			}
		}
		if mobile < 0 {
			return perms, swaps
		}
		j := mobile + dir[mobile]
		swaps = append(swaps, min(mobile, j))
		arr[mobile], arr[j] = arr[j], arr[mobile]
		dir[mobile], dir[j] = dir[j], dir[mobile]
		// Reverse direction of everything larger than the moved element.
		for i := 0; i < 4; i++ {
			if arr[i] > arr[j] {
				dir[i] = -dir[i]
			}
		}
		perms = append(perms, arr)
	}
}

func init() {
	perms, swaps := sjt()
	if len(perms) != SigmaCount || len(swaps) != SigmaCount-1 {
		panic(fmt.Sprintf("canon: plain changes produced %d perms, %d swaps", len(perms), len(swaps)))
	}
	indexOf := make(map[[4]uint8]int, SigmaCount)
	for i, s := range perms {
		sigmas[i] = s
		indexOf[s] = i
		g, err := perm.WireShuffle(s)
		if err != nil {
			panic(err)
		}
		shuffles[i] = g
	}
	copy(schedule[:], swaps)

	// Walk-position transitions: applying kernel t to a function currently
	// conjugated by shuffles[s] leaves it conjugated by the product
	// shuffle τₜ.Then-composed appropriately. We determine the resulting
	// index by composing the actual shuffle words, which avoids any
	// convention slips.
	shuffleIdx := make(map[perm.Perm]int, SigmaCount)
	for i, g := range shuffles {
		shuffleIdx[g] = i
	}
	taus := [3][4]uint8{{1, 0, 2, 3}, {0, 2, 1, 3}, {0, 1, 3, 2}}
	var tauShuffles [3]perm.Perm
	for t, sigma := range taus {
		g, err := perm.WireShuffle(sigma)
		if err != nil {
			panic(err)
		}
		tauShuffles[t] = g
	}
	for s := 0; s < SigmaCount; s++ {
		for t := 0; t < 3; t++ {
			// conj(conj(f, A), B) = conj(f, A·B) where A·B applies B
			// first: as packed words, B.Then(A).
			combined := tauShuffles[t].Then(shuffles[s])
			idx, ok := shuffleIdx[combined]
			if !ok {
				panic("canon: shuffle product escaped the group")
			}
			stepTable[s][t] = idx
		}
		inv, ok := shuffleIdx[shuffles[s].Inverse()]
		if !ok {
			panic("canon: shuffle inverse escaped the group")
		}
		inverseIdx[s] = inv
	}

	// Gate conjugation tables: wire relabeling maps library gates to
	// library gates (paper §3.2 — "their conjugacy classes consist of
	// gates").
	gateOf := make(map[perm.Perm]gate.Gate, gate.Count)
	for _, g := range gate.All() {
		gateOf[g.Perm()] = g
	}
	for s := 0; s < SigmaCount; s++ {
		for gi := 0; gi < gate.Count; gi++ {
			g := gate.FromIndex(gi)
			p := perm.Conjugate(g.Perm(), shuffles[s])
			cg, ok := gateOf[p]
			if !ok {
				panic(fmt.Sprintf("canon: conjugate of gate %v by σ%d is not a gate", g, s))
			}
			conjGateTable[s][gi] = cg
		}
	}
}

// Sigma returns the s-th wire relabeling in the package's fixed
// plain-changes order; Sigma(0) is the identity.
func Sigma(s int) [4]uint8 { return sigmas[s] }

// Shuffle returns the state permutation gσ of the s-th relabeling.
func Shuffle(s int) perm.Perm { return shuffles[s] }

// InverseSigma returns the index of the relabeling inverse to the s-th.
func InverseSigma(s int) int { return inverseIdx[s] }

// ConjugateGate returns the library gate computing the conjugation of g
// by the s-th relabeling's shuffle: Conjugate(g.Perm(), Shuffle(s)).
func ConjugateGate(g gate.Gate, s int) gate.Gate {
	return conjGateTable[s][g.Index()]
}

// Canonical returns the canonical representative of f's equivalence
// class, together with a witness: rep = Conjugate(base, Shuffle(sigma))
// where base is f when inverted is false and f.Inverse() when true.
//
// The representative is the minimum packed word over the ≤48 class
// members; equivalent functions (and inverses) therefore canonicalize to
// the identical representative.
func Canonical(f perm.Perm) (rep perm.Perm, sigma int, inverted bool) {
	fi := f.Inverse()
	if fi == f {
		// Involution: the inverse orbit coincides with the direct one, so
		// the second sweep — half the conjugation kernels and comparisons
		// of the general case — is pure repetition. Involutions are not
		// rare in the BFS inner loop (every alphabet element is one, and
		// palindromic products stay closed under inversion), so this
		// halves the canonicalization cost exactly where Table 1 says the
		// time goes.
		rep, sigma = f, 0
		cf := f
		s := 0
		for _, t := range schedule {
			cf = cf.ConjugateAdjacent(t)
			s = stepTable[s][t]
			if cf < rep {
				rep, sigma = cf, s
			}
		}
		return rep, sigma, false
	}
	rep, sigma, inverted = f, 0, false
	if fi < rep {
		rep, inverted = fi, true
	}
	cf, cfi := f, fi
	s := 0
	for _, t := range schedule {
		cf = cf.ConjugateAdjacent(t)
		cfi = cfi.ConjugateAdjacent(t)
		s = stepTable[s][t]
		if cf < rep {
			rep, sigma, inverted = cf, s, false
		}
		if cfi < rep {
			rep, sigma, inverted = cfi, s, true
		}
	}
	return rep, sigma, inverted
}

// Rep returns just the canonical representative of f's class.
func Rep(f perm.Perm) perm.Perm {
	rep, _, _ := Canonical(f)
	return rep
}

// ForEachVariant calls fn on every member of f's equivalence class, in a
// fixed order, possibly with repeats when the class is degenerate (class
// size < 48). It stops early if fn returns false. This is the inner
// enumeration of the meet-in-the-middle search (paper Algorithm 1): all
// functions of size i are exactly the variants of the stored canonical
// representatives of size i.
//
// When f is an involution the inverse orbit repeats the direct one
// member for member, so only the 24 conjugates are visited — half the
// kernels, and half the candidate probes for the search loops built on
// top.
func ForEachVariant(f perm.Perm, fn func(perm.Perm) bool) {
	fi := f.Inverse()
	if fi == f {
		if !fn(f) {
			return
		}
		cf := f
		for _, t := range schedule {
			cf = cf.ConjugateAdjacent(t)
			if !fn(cf) {
				return
			}
		}
		return
	}
	if !fn(f) || !fn(fi) {
		return
	}
	cf, cfi := f, fi
	for _, t := range schedule {
		cf = cf.ConjugateAdjacent(t)
		cfi = cfi.ConjugateAdjacent(t)
		if !fn(cf) || !fn(cfi) {
			return
		}
	}
}

// Class returns the distinct members of f's equivalence class in
// ascending packed-word order. Its length divides into the 16!-element
// space the way paper Table 4's "Functions" and "Reduced Functions"
// columns relate.
func Class(f perm.Perm) []perm.Perm {
	seen := make(map[perm.Perm]struct{}, MaxClassSize)
	ForEachVariant(f, func(v perm.Perm) bool {
		seen[v] = struct{}{}
		return true
	})
	out := make([]perm.Perm, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// ClassSize returns the number of distinct members of f's class (≤ 48).
func ClassSize(f perm.Perm) int {
	// The variant walk yields at most 48 values (24 for involutions, with
	// repeats); insertion-sort them into a stack array and count runs —
	// no allocation and far fewer comparisons than a pairwise scan on
	// this hot path (Result.FullCount calls this once per
	// representative).
	var members [MaxClassSize]perm.Perm
	n := 0
	ForEachVariant(f, func(v perm.Perm) bool {
		members[n] = v
		n++
		return true
	})
	for i := 1; i < n; i++ {
		v := members[i]
		j := i
		for ; j > 0 && members[j-1] > v; j-- {
			members[j] = members[j-1]
		}
		members[j] = v
	}
	distinct := 1
	for i := 1; i < n; i++ {
		if members[i] != members[i-1] {
			distinct++
		}
	}
	return distinct
}
