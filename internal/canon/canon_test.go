package canon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gate"
	"repro/internal/perm"
)

func randPerm(rng *rand.Rand) perm.Perm {
	var vals [16]uint8
	for i := range vals {
		vals[i] = uint8(i)
	}
	for i := 15; i > 0; i-- {
		j := rng.Intn(i + 1)
		vals[i], vals[j] = vals[j], vals[i]
	}
	return perm.MustFromValues(vals)
}

func TestPlainChangesEnumeratesS4(t *testing.T) {
	seen := map[[4]uint8]bool{}
	for s := 0; s < SigmaCount; s++ {
		sig := Sigma(s)
		if seen[sig] {
			t.Fatalf("relabeling %v repeated at position %d", sig, s)
		}
		seen[sig] = true
	}
	if len(seen) != 24 {
		t.Fatalf("enumerated %d relabelings, want 24", len(seen))
	}
	if Sigma(0) != [4]uint8{0, 1, 2, 3} {
		t.Fatalf("Sigma(0) = %v, want identity", Sigma(0))
	}
}

func TestConsecutiveSigmasDifferByAdjacentSwap(t *testing.T) {
	for s := 0; s+1 < SigmaCount; s++ {
		a, b := Sigma(s), Sigma(s+1)
		diff := 0
		for i := 0; i < 4; i++ {
			if a[i] != b[i] {
				diff++
			}
		}
		if diff != 2 {
			t.Fatalf("positions %d and %d differ in %d slots, want 2", s, s+1, diff)
		}
	}
}

func TestShuffleOfIdentityIsIdentity(t *testing.T) {
	if Shuffle(0) != perm.Identity {
		t.Fatalf("Shuffle(0) = %v", Shuffle(0))
	}
}

func TestInverseSigma(t *testing.T) {
	for s := 0; s < SigmaCount; s++ {
		if Shuffle(s).Then(Shuffle(InverseSigma(s))) != perm.Identity &&
			Shuffle(InverseSigma(s)).Then(Shuffle(s)) != perm.Identity {
			t.Fatalf("InverseSigma(%d) = %d is not an inverse", s, InverseSigma(s))
		}
	}
}

func TestCanonicalWitness(t *testing.T) {
	// The returned (sigma, inverted) pair must reconstruct the
	// representative exactly — this is what BFS/search rely on to
	// translate stored gates back to the queried function.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3000; trial++ {
		f := randPerm(rng)
		rep, sigma, inverted := Canonical(f)
		base := f
		if inverted {
			base = f.Inverse()
		}
		if got := perm.Conjugate(base, Shuffle(sigma)); got != rep {
			t.Fatalf("witness failed for %v: conj(base,σ%d)=%v, rep=%v (inv=%v)",
				f, sigma, got, rep, inverted)
		}
	}
}

func TestCanonicalIsClassInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		f := randPerm(rng)
		rep := Rep(f)
		if Rep(f.Inverse()) != rep {
			t.Fatalf("Rep(f⁻¹) differs from Rep(f) for %v", f)
		}
		for s := 0; s < SigmaCount; s++ {
			if Rep(perm.Conjugate(f, Shuffle(s))) != rep {
				t.Fatalf("Rep of conjugate by σ%d differs for %v", s, f)
			}
		}
	}
}

func TestCanonicalIsMinimumOfClass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		f := randPerm(rng)
		rep := Rep(f)
		for _, v := range Class(f) {
			if v < rep {
				t.Fatalf("class member %v below representative %v", v, rep)
			}
		}
		found := false
		for _, v := range Class(f) {
			if v == rep {
				found = true
			}
		}
		if !found {
			t.Fatalf("representative %v not in its own class", rep)
		}
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		f := randPerm(rng)
		rep := Rep(f)
		if Rep(rep) != rep {
			t.Fatalf("Rep not idempotent: Rep(%v) = %v", rep, Rep(rep))
		}
	}
}

func TestClassSizeDividesIntoVariants(t *testing.T) {
	// Class sizes must divide 48 (orbit-stabilizer for the group of order
	// 48 acting by conjugation+inversion).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		f := randPerm(rng)
		n := ClassSize(f)
		if n < 1 || n > MaxClassSize || MaxClassSize%n != 0 {
			t.Fatalf("class size %d does not divide %d", n, MaxClassSize)
		}
		if got := len(Class(f)); got != n {
			t.Fatalf("ClassSize=%d but len(Class)=%d", n, got)
		}
	}
}

func TestMostClassesHaveFullSize(t *testing.T) {
	// Paper §3.2: "a vast majority of functions have 48 distinct
	// equivalent functions."
	rng := rand.New(rand.NewSource(6))
	full := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		if ClassSize(randPerm(rng)) == MaxClassSize {
			full++
		}
	}
	if full < trials*95/100 {
		t.Fatalf("only %d/%d random functions have full 48-element classes", full, trials)
	}
}

func TestIdentityClassIsSingleton(t *testing.T) {
	if n := ClassSize(perm.Identity); n != 1 {
		t.Fatalf("identity class size = %d, want 1", n)
	}
	if Rep(perm.Identity) != perm.Identity {
		t.Fatal("identity is not its own representative")
	}
}

func TestNOTClassMatchesPaperExample(t *testing.T) {
	// Paper §3.2: "if f = NOT(a), then there exist only 4 distinct
	// functions of the form fσ" — and NOT gates are self-inverse, so the
	// full class (with inversion) is also exactly the 4 NOT gates.
	f := gate.MustParse("NOT(a)").Perm()
	cls := Class(f)
	if len(cls) != 4 {
		t.Fatalf("NOT(a) class size = %d, want 4", len(cls))
	}
	wantMembers := map[perm.Perm]bool{}
	for w := 0; w < 4; w++ {
		wantMembers[gate.MustNew(w, 0).Perm()] = true
	}
	for _, v := range cls {
		if !wantMembers[v] {
			t.Fatalf("unexpected member %v in NOT class", v)
		}
	}
}

func TestGateClassesAreGateKinds(t *testing.T) {
	// Conjugation+inversion partitions the 32 gates into exactly the four
	// kinds: 4 NOTs, 12 CNOTs, 12 TOFs, 4 TOF4s (paper Table 4, size-1
	// row: 32 functions, 4 reduced).
	reps := map[perm.Perm][]gate.Gate{}
	for _, g := range gate.All() {
		r := Rep(g.Perm())
		reps[r] = append(reps[r], g)
	}
	if len(reps) != 4 {
		t.Fatalf("gates form %d classes, want 4", len(reps))
	}
	for r, gates := range reps {
		kind := gates[0].Kind()
		for _, g := range gates {
			if g.Kind() != kind {
				t.Fatalf("class of %v mixes kinds", r)
			}
		}
		wantLen := map[gate.Kind]int{gate.NOT: 4, gate.CNOT: 12, gate.TOF: 12, gate.TOF4: 4}[kind]
		if len(gates) != wantLen {
			t.Fatalf("%v class has %d gates, want %d", kind, len(gates), wantLen)
		}
	}
}

func TestConjugateGateTable(t *testing.T) {
	for s := 0; s < SigmaCount; s++ {
		for _, g := range gate.All() {
			cg := ConjugateGate(g, s)
			if cg.Perm() != perm.Conjugate(g.Perm(), Shuffle(s)) {
				t.Fatalf("ConjugateGate(%v, σ%d) = %v does not match conjugation", g, s, cg)
			}
			if cg.Kind() != g.Kind() {
				t.Fatalf("conjugation changed gate kind: %v -> %v", g, cg)
			}
		}
	}
}

func TestConjugateGateDistributes(t *testing.T) {
	// conj(p.Then(q)) = conj(p).Then(conj(q)) specialized to gates: the
	// identity the circuit-reconstruction logic depends on.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		g1 := gate.FromIndex(rng.Intn(gate.Count))
		g2 := gate.FromIndex(rng.Intn(gate.Count))
		s := rng.Intn(SigmaCount)
		lhs := perm.Conjugate(g1.Perm().Then(g2.Perm()), Shuffle(s))
		rhs := ConjugateGate(g1, s).Perm().Then(ConjugateGate(g2, s).Perm())
		if lhs != rhs {
			t.Fatalf("gate conjugation does not distribute (σ%d, %v, %v)", s, g1, g2)
		}
	}
}

func TestForEachVariantCoversClassExactly48(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		f := randPerm(rng)
		count := 0
		seen := map[perm.Perm]bool{}
		ForEachVariant(f, func(v perm.Perm) bool {
			count++
			seen[v] = true
			return true
		})
		if count != MaxClassSize {
			t.Fatalf("variant walk yielded %d values, want %d", count, MaxClassSize)
		}
		if len(seen) != ClassSize(f) {
			t.Fatalf("variant walk covered %d distinct, class size %d", len(seen), ClassSize(f))
		}
	}
}

func TestForEachVariantEarlyStop(t *testing.T) {
	count := 0
	ForEachVariant(perm.Identity, func(perm.Perm) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop after %d calls, want 5", count)
	}
}

func TestQuickEquivalentFunctionsShareRep(t *testing.T) {
	f := func(seed int64, sRaw uint8, invert bool) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randPerm(rng)
		v := perm.Conjugate(p, Shuffle(int(sRaw)%SigmaCount))
		if invert {
			v = v.Inverse()
		}
		return Rep(v) == Rep(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// randInvolution composes a random palindrome of gates — (g₁…gₙ…g₁) is
// its own inverse because every gate is — giving involutions that are
// not themselves single alphabet elements.
func randInvolution(rng *rand.Rand) perm.Perm {
	g1 := gate.FromIndex(rng.Intn(gate.Count)).Perm()
	g2 := gate.FromIndex(rng.Intn(gate.Count)).Perm()
	g3 := gate.FromIndex(rng.Intn(gate.Count)).Perm()
	p := g1.Then(g2).Then(g3).Then(g2).Then(g1)
	if p.Inverse() != p {
		panic("palindrome is not an involution")
	}
	return p
}

// TestCanonicalInvolutionFastPath checks the single-sweep shortcut
// against the definition: for involutions the representative must still
// be the minimum over the full class, with a valid witness.
func TestCanonicalInvolutionFastPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		f := randInvolution(rng)
		rep, sigma, inverted := Canonical(f)
		cls := Class(f)
		if rep != cls[0] {
			t.Fatalf("involution %v canonicalized to %v, class min %v", f, rep, cls[0])
		}
		base := f
		if inverted {
			base = f.Inverse()
		}
		if got := perm.Conjugate(base, Shuffle(sigma)); got != rep {
			t.Fatalf("witness broken for involution %v: conj = %v, rep = %v", f, got, rep)
		}
		// The walk must visit the whole class in half the kernel count.
		count, seen := 0, map[perm.Perm]bool{}
		ForEachVariant(f, func(v perm.Perm) bool {
			count++
			seen[v] = true
			return true
		})
		if count != SigmaCount {
			t.Fatalf("involution variant walk yielded %d values, want %d", count, SigmaCount)
		}
		if len(seen) != ClassSize(f) {
			t.Fatalf("involution walk covered %d distinct, class size %d", len(seen), ClassSize(f))
		}
	}
}

// BenchmarkCanonical isolates the canonicalization kernel on the two
// input populations the BFS inner loop sees: general functions (one
// inversion, 46 conjugation kernels) and involutions, where the inverse
// sweep is skipped and the kernel count halves.
func BenchmarkCanonical(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	random := make([]perm.Perm, 1024)
	invs := make([]perm.Perm, 1024)
	for i := range random {
		random[i] = randPerm(rng)
		invs[i] = randInvolution(rng)
	}
	for _, tc := range []struct {
		name string
		ps   []perm.Perm
	}{{"random", random}, {"involution", invs}} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var acc perm.Perm
			for i := 0; i < b.N; i++ {
				r, _, _ := Canonical(tc.ps[i&1023])
				acc ^= r
			}
			_ = acc
		})
	}
}

func BenchmarkClassSize(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	ps := make([]perm.Perm, 256)
	for i := range ps {
		ps[i] = randPerm(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	acc := 0
	for i := 0; i < b.N; i++ {
		acc += ClassSize(ps[i&255])
	}
	_ = acc
}
