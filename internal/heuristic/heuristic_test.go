package heuristic

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/benchfuncs"
	"repro/internal/core"
	"repro/internal/perm"
	"repro/internal/randperm"
)

func TestIdentity(t *testing.T) {
	c, err := Synthesize(perm.Identity)
	if err != nil || len(c) != 0 {
		t.Fatalf("identity: %v, %v", c, err)
	}
	c, err = SynthesizeBidirectional(perm.Identity)
	if err != nil || len(c) != 0 {
		t.Fatalf("identity (bidir): %v, %v", c, err)
	}
}

func TestInvalidRejected(t *testing.T) {
	if _, err := Synthesize(perm.Perm(0)); err == nil {
		t.Fatal("invalid input accepted")
	}
	if _, err := SynthesizeBidirectional(perm.Perm(0)); err == nil {
		t.Fatal("invalid input accepted (bidir)")
	}
}

func TestCorrectOnRandomPermutations(t *testing.T) {
	gen := randperm.New(1)
	for trial := 0; trial < 3000; trial++ {
		f := gen.Next()
		c, err := Synthesize(f)
		if err != nil {
			t.Fatal(err)
		}
		if c.Perm() != f {
			t.Fatalf("unidirectional synthesis wrong for %v", f)
		}
		if len(c) > WorstCaseBound {
			t.Fatalf("length %d exceeds worst-case bound", len(c))
		}
		b, err := SynthesizeBidirectional(f)
		if err != nil {
			t.Fatal(err)
		}
		if b.Perm() != f {
			t.Fatalf("bidirectional synthesis wrong for %v", f)
		}
	}
}

func TestCorrectOnAllBenchmarks(t *testing.T) {
	for _, bm := range benchfuncs.All() {
		c, err := Synthesize(bm.Spec)
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if c.Perm() != bm.Spec {
			t.Fatalf("%s: wrong function", bm.Name)
		}
		if len(c) < bm.OptimalSize {
			t.Fatalf("%s: heuristic produced %d gates below the proved optimum %d — impossible",
				bm.Name, len(c), bm.OptimalSize)
		}
		b, err := SynthesizeBidirectional(bm.Spec)
		if err != nil {
			t.Fatalf("%s (bidir): %v", bm.Name, err)
		}
		if b.Perm() != bm.Spec || len(b) < bm.OptimalSize {
			t.Fatalf("%s (bidir): wrong or impossibly short", bm.Name)
		}
	}
}

func TestBidirectionalNeverWorseOnAverage(t *testing.T) {
	gen := randperm.New(7)
	uniTotal, biTotal := 0, 0
	const trials = 500
	for trial := 0; trial < trials; trial++ {
		f := gen.Next()
		u, err := Synthesize(f)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SynthesizeBidirectional(f)
		if err != nil {
			t.Fatal(err)
		}
		uniTotal += len(u)
		biTotal += len(b)
	}
	if biTotal > uniTotal {
		t.Fatalf("bidirectional averaged worse: %d vs %d gates over %d functions",
			biTotal, uniTotal, trials)
	}
	t.Logf("avg gates: unidirectional %.2f, bidirectional %.2f",
		float64(uniTotal)/trials, float64(biTotal)/trials)
}

var (
	optOnce sync.Once
	optRef  *core.Synthesizer
)

func optimal(t testing.TB) *core.Synthesizer {
	optOnce.Do(func() {
		var err error
		optRef, err = core.New(core.Config{K: 4})
		if err != nil {
			panic(err)
		}
	})
	return optRef
}

// TestOverheadVersusOptimal quantifies the paper's §1 point: heuristics
// carry real overhead against 4-bit optima. On functions of known size
// ≤ 8 the heuristic must be correct and is expected to be measurably
// longer on average.
func TestOverheadVersusOptimal(t *testing.T) {
	s := optimal(t)
	rng := rand.New(rand.NewSource(3))
	heuristicTotal, optimalTotal := 0, 0
	count := 0
	for size := 2; size <= 4; size++ {
		lvl := s.Result().Levels[size]
		for trial := 0; trial < 40; trial++ {
			f := lvl[rng.Intn(len(lvl))]
			h, err := SynthesizeBidirectional(f)
			if err != nil {
				t.Fatal(err)
			}
			if h.Perm() != f {
				t.Fatal("wrong function")
			}
			if len(h) < size {
				t.Fatalf("heuristic beat the proved optimum: %d < %d", len(h), size)
			}
			heuristicTotal += len(h)
			optimalTotal += size
			count++
		}
	}
	if heuristicTotal < optimalTotal {
		t.Fatal("accounting error")
	}
	t.Logf("avg over %d functions: heuristic %.2f vs optimal %.2f gates",
		count, float64(heuristicTotal)/float64(count), float64(optimalTotal)/float64(count))
}

func TestQuickNeverBelowOptimalBound(t *testing.T) {
	// Row-repair gate counts are bounded below by a simple invariant:
	// a circuit with g gates moves at most ... — use the cheap necessary
	// condition that a non-identity function needs ≥ 1 gate.
	f := func(seed int64) bool {
		gen := randperm.New(uint32(seed))
		p := gen.Next()
		c, err := Synthesize(p)
		if err != nil {
			return false
		}
		if p != perm.Identity && len(c) == 0 {
			return false
		}
		return c.Perm() == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUnidirectional(b *testing.B) {
	gen := randperm.New(9)
	ps := gen.Sample(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Synthesize(ps[i&255]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBidirectional(b *testing.B) {
	gen := randperm.New(10)
	ps := gen.Sample(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SynthesizeBidirectional(ps[i&255]); err != nil {
			b.Fatal(err)
		}
	}
}
