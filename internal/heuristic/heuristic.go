// Package heuristic implements a transformation-based reversible-logic
// synthesis baseline in the style of Miller, Maslov and Dueck (the
// algorithm family behind several of the paper's Table 6 "best known
// circuit" entries, and the kind of heuristic the paper proposes testing
// against optimal 4-bit implementations, §1).
//
// The algorithm walks the truth table in index order. At row x with
// current output y ≠ x it appends Toffoli-family gates on the output
// side that map y back to x without disturbing any earlier row: bits of
// x missing from y are switched on by gates controlled on the current
// value's 1-bits, then surplus bits are switched off by gates controlled
// on x's 1-bits. Both control choices provably cannot fire on rows
// below x. The bidirectional variant may instead repair the row on the
// input side (mapping x forward to f⁻¹(x)) when that needs fewer gates.
//
// Circuits produced this way are correct by construction but generally
// far from optimal — which is exactly their role here: a baseline whose
// overhead the optimal synthesizer quantifies.
package heuristic

import (
	"fmt"
	"math/bits"

	"repro/internal/circuit"
	"repro/internal/gate"
	"repro/internal/perm"
)

// transform returns gates g1…gk whose in-order application maps from to
// to, firing on no state below floor. Preconditions (maintained by the
// sweep): from ≥ floor, to ≥ floor, and every state i < floor satisfies
// neither control pattern. The gate count is the Hamming distance.
func transform(from, to, floor int) []gate.Gate {
	var out []gate.Gate
	cur := from
	// Switch on the bits of to missing from cur. Controls are the
	// current value's 1-bits: a state i fires only if it contains them
	// all, which forces i ≥ cur ≥ floor.
	for p := 0; p < 4; p++ {
		if to&(1<<p) != 0 && cur&(1<<p) == 0 {
			controls := uint8(cur)
			g, err := gate.New(p, controls)
			if err != nil {
				panic(fmt.Sprintf("heuristic: impossible gate target %d controls %04b: %v", p, controls, err))
			}
			out = append(out, g)
			cur |= 1 << p
		}
	}
	// Switch off the surplus bits. Controls are the 1-bits of to: firing
	// requires i ⊇ to, forcing i ≥ to ≥ floor.
	for p := 0; p < 4; p++ {
		if cur&(1<<p) != 0 && to&(1<<p) == 0 {
			controls := uint8(to)
			g, err := gate.New(p, controls)
			if err != nil {
				panic(fmt.Sprintf("heuristic: impossible gate target %d controls %04b: %v", p, controls, err))
			}
			out = append(out, g)
			cur &^= 1 << p
		}
	}
	if cur != to {
		panic("heuristic: transform failed to reach target")
	}
	return out
}

// Synthesize runs the unidirectional (output-side) sweep and returns a
// circuit computing f. The result is correct for every input but not
// minimal.
func Synthesize(f perm.Perm) (circuit.Circuit, error) {
	if !f.IsValid() {
		return nil, fmt.Errorf("heuristic: not a valid reversible function")
	}
	w := f
	var outGates []gate.Gate // pipeline order after f
	for x := 0; x < 16; x++ {
		y := w.Apply(x)
		if y == x {
			continue
		}
		for _, g := range transform(y, x, x) {
			w = w.Then(g.Perm())
			outGates = append(outGates, g)
		}
	}
	if w != perm.Identity {
		return nil, fmt.Errorf("heuristic: sweep did not reach identity (internal error)")
	}
	// f ⋄ OUT = id ⇒ f = reverse(OUT) (gates are involutions).
	c := make(circuit.Circuit, len(outGates))
	for i, g := range outGates {
		c[len(outGates)-1-i] = g
	}
	return c, nil
}

// SynthesizeBidirectional runs the two-sided sweep: each row is repaired
// on whichever side needs fewer gates (ties go to the output side). It
// typically beats the unidirectional sweep by a moderate margin.
func SynthesizeBidirectional(f perm.Perm) (circuit.Circuit, error) {
	if !f.IsValid() {
		return nil, fmt.Errorf("heuristic: not a valid reversible function")
	}
	w := f
	var outGates []gate.Gate   // pipeline order after f, in append order
	var inBlocks [][]gate.Gate // per-row input blocks; later blocks sit earlier in the pipeline
	for x := 0; x < 16; x++ {
		y := w.Apply(x)
		if y == x {
			continue
		}
		z := w.Inverse().Apply(x)
		if bits.OnesCount8(uint8(z^x)) < bits.OnesCount8(uint8(y^x)) {
			// Input side: insert a block mapping x forward to z in front
			// of the current pipeline, so w'(x) = w(z) = x. The block's
			// gates apply in order before everything already there:
			// w' = (h1 ⋄ … ⋄ hk) ⋄ w.
			block := transform(x, z, x)
			blockPerm := perm.Identity
			for _, g := range block {
				blockPerm = blockPerm.Then(g.Perm())
			}
			w = blockPerm.Then(w)
			inBlocks = append(inBlocks, block)
		} else {
			for _, g := range transform(y, x, x) {
				w = w.Then(g.Perm())
				outGates = append(outGates, g)
			}
		}
	}
	if w != perm.Identity {
		return nil, fmt.Errorf("heuristic: sweep did not reach identity (internal error)")
	}
	// Pipeline: IN ⋄ f ⋄ OUT = id where IN = blockₙ … block₁ (later
	// blocks outermost), so f = IN⁻¹ ⋄ OUT⁻¹ = rev(block₁) … rev(blockₙ)
	// followed by rev(OUT); every gate is its own inverse.
	var c circuit.Circuit
	for _, block := range inBlocks {
		for i := len(block) - 1; i >= 0; i-- {
			c = append(c, block[i])
		}
	}
	for i := len(outGates) - 1; i >= 0; i-- {
		c = append(c, outGates[i])
	}
	return c, nil
}

// WorstCaseBound is a coarse upper bound on the unidirectional sweep's
// output: each of the 16 rows costs at most the 4-bit Hamming distance.
const WorstCaseBound = 16 * 4
