// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablations for the design choices called out in
// DESIGN.md §6. Regenerate everything with
//
//	go test -bench=. -benchmem .
//
// The shared fixture builds the k = REVSYNTH_K (default 7) tables once —
// the paper's own Table 2 publishes the k = 7 configuration, and at k = 7
// every benchmark function in Table 6 (max size 13) is synthesizable.
// Formatted side-by-side tables are produced by cmd/revtables; these
// benchmarks measure the times those tables summarize.
package repro

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"bytes"

	"repro/internal/bfs"
	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/distrib"
	"repro/internal/five"
	"repro/internal/gate"
	"repro/internal/hashtab"
	"repro/internal/heuristic"
	"repro/internal/linear"
	"repro/internal/mt19937"
	"repro/internal/randperm"
	"repro/internal/render"
	"repro/internal/report"
	"repro/internal/rewrite"
	"repro/internal/tablesio"
)

var (
	benchOnce  sync.Once
	benchSynth *core.Synthesizer
	benchErr   error
)

func benchK() int {
	if v := os.Getenv("REVSYNTH_K"); v != "" {
		if k, err := strconv.Atoi(v); err == nil && k >= 2 && k <= 8 {
			return k
		}
	}
	return 7
}

func benchFixture(b *testing.B) *core.Synthesizer {
	benchOnce.Do(func() {
		benchSynth, benchErr = core.New(core.Config{K: benchK()})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSynth
}

// BenchmarkTable1SynthesisBySize reproduces Table 1: average time to
// compute a minimal circuit as a function of the circuit size. Paper
// values at k = 9 range from 5×10⁻⁷ s (size 0) to 3×10⁻¹ s (size 14).
func BenchmarkTable1SynthesisBySize(b *testing.B) {
	s := benchFixture(b)
	sampleCount := func(size int) int {
		switch {
		case size <= s.K():
			return 64
		case size <= s.K()+3:
			return 4
		default:
			return 1
		}
	}
	maxSize := s.K() + 6
	if maxSize > s.Horizon() {
		maxSize = s.Horizon()
	}
	for size := 0; size <= maxSize; size++ {
		fns, err := distrib.ExactSizeSamples(s, size, sampleCount(size), uint32(1000+size))
		if err != nil {
			b.Fatalf("size %d: %v", size, err)
		}
		b.Run(fmt.Sprintf("size=%02d", size), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Synthesize(fns[i%len(fns)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2HashStats reproduces Table 2: the time to build the
// canonical-representative hash tables and their probe statistics
// (reported as metrics: load, avg/max chain).
func BenchmarkTable2HashStats(b *testing.B) {
	for _, k := range []int{4, 5, 6} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var st hashtab.Stats
			for i := 0; i < b.N; i++ {
				res, err := bfs.Search(bfs.GateAlphabet(), k, &bfs.Options{
					CapacityHint: int(bfs.CumulativeGateReduced(k)),
				})
				if err != nil {
					b.Fatal(err)
				}
				st = res.Table.ComputeStats()
			}
			b.ReportMetric(st.LoadFactor, "load")
			b.ReportMetric(st.AvgChain, "avgChain")
			b.ReportMetric(float64(st.MaxChain), "maxChain")
			b.ReportMetric(float64(st.Entries), "entries")
		})
	}
}

// BenchmarkTable3RandomDistribution reproduces the §4.1 experiment: one
// op synthesizes a batch of 10 uniformly random permutations (the paper
// does 10M at 0.01035 s each on a 16-CPU machine with k = 9). Metrics
// report the within-horizon fraction and the weighted average size.
func BenchmarkTable3RandomDistribution(b *testing.B) {
	s := benchFixture(b)
	const batch = 10
	gen := randperm.New(5489)
	var within, total, sum int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			total++
			if size, err := s.Size(gen.Next()); err == nil {
				within++
				sum += int64(size)
			}
		}
	}
	b.StopTimer()
	if within > 0 {
		b.ReportMetric(float64(sum)/float64(within), "avgSize")
	}
	b.ReportMetric(float64(within)/float64(total), "withinHorizon")
	b.ReportMetric(batch, "perms/op")
}

// BenchmarkTable4BFSLevels reproduces Table 4's exact counting: a reduced
// BFS to depth 5 whose class counts and class-size-weighted full counts
// must equal the paper's columns.
func BenchmarkTable4BFSLevels(b *testing.B) {
	a := bfs.GateAlphabet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bfs.Search(a, 5, &bfs.Options{CapacityHint: int(bfs.CumulativeGateReduced(5))})
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c <= 5; c++ {
			if int64(res.ReducedCount(c)) != bfs.GateReducedCounts[c] {
				b.Fatalf("reduced count mismatch at size %d", c)
			}
			if res.FullCount(c) != bfs.GateFullCounts[c] {
				b.Fatalf("full count mismatch at size %d", c)
			}
		}
	}
}

// BenchmarkTable5LinearDistribution reproduces Table 5 exactly: the
// closed BFS over the 322,560 linear reversible functions. The paper
// reports "under two seconds" for this on a 2008 laptop.
func BenchmarkTable5LinearDistribution(b *testing.B) {
	a := bfs.LinearAlphabet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := bfs.Search(a, 10, &bfs.Options{NoReduction: true, CapacityHint: linear.NumAffine})
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c <= 10; c++ {
			if int64(res.ReducedCount(c)) != bfs.LinearCounts[c] {
				b.Fatalf("linear count mismatch at size %d", c)
			}
		}
	}
}

// BenchmarkTable6Benchmarks reproduces Table 6: per-benchmark optimal
// synthesis time, with the proved-optimal size asserted. Paper runtimes
// (k = 9, tables preloaded) range from 2 µs to 26.5 ms.
func BenchmarkTable6Benchmarks(b *testing.B) {
	s := benchFixture(b)
	for _, bm := range Benchmarks() {
		b.Run(bm.Name, func(b *testing.B) {
			if bm.OptimalSize > s.Horizon() {
				b.Skipf("size %d beyond horizon %d (raise REVSYNTH_K)", bm.OptimalSize, s.Horizon())
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, info, err := s.SynthesizeInfo(bm.Spec)
				if err != nil {
					b.Fatal(err)
				}
				if info.Cost != bm.OptimalSize || c.Perm() != bm.Spec {
					b.Fatalf("%s: got size %d, want %d", bm.Name, info.Cost, bm.OptimalSize)
				}
			}
		})
	}
}

// BenchmarkFigure1Render covers Figure 1 (gate diagrams).
func BenchmarkFigure1Render(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := render.Figure1(render.Unicode); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure2AdderSynthesis covers Figure 2: proving the 4-gate
// optimum for the 1-bit full adder starting from the 6-gate textbook
// construction.
func BenchmarkFigure2AdderSynthesis(b *testing.B) {
	s := benchFixture(b)
	adder := report.SuboptimalAdder().Perm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := s.Synthesize(adder)
		if err != nil {
			b.Fatal(err)
		}
		if len(c) != 4 {
			b.Fatalf("adder optimum %d, want 4", len(c))
		}
	}
}

// BenchmarkAblationReduction compares BFS with and without the paper's
// ÷48 canonical symmetry reduction (§3.2): the reduced search stores ~48×
// fewer entries at the cost of canonicalization per expansion.
func BenchmarkAblationReduction(b *testing.B) {
	a := bfs.GateAlphabet()
	for _, mode := range []struct {
		name     string
		noReduce bool
	}{{"reduced", false}, {"unreduced", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var stored int
			for i := 0; i < b.N; i++ {
				res, err := bfs.Search(a, 4, &bfs.Options{NoReduction: mode.noReduce})
				if err != nil {
					b.Fatal(err)
				}
				stored = res.TotalStored()
			}
			b.ReportMetric(float64(stored), "entries")
		})
	}
}

// BenchmarkAblationHash compares Wang's hash64shift against a weak
// multiplicative hash on the real key distribution (canonical
// representatives of size ≤ 5): probe chains blow up when the mixing is
// too weak for the highly structured packed words.
func BenchmarkAblationHash(b *testing.B) {
	res, err := bfs.Search(bfs.GateAlphabet(), 5, nil)
	if err != nil {
		b.Fatal(err)
	}
	var keys []uint64
	for c := 0; c <= 5; c++ {
		for _, rep := range res.Levels[c] {
			keys = append(keys, uint64(rep))
		}
	}
	for _, kind := range []struct {
		name string
		k    hashtab.HashKind
	}{{"wang", hashtab.Wang}, {"weakMultiplicative", hashtab.WeakMultiplicative}} {
		b.Run(kind.name, func(b *testing.B) {
			var st hashtab.Stats
			for i := 0; i < b.N; i++ {
				t := hashtab.NewWithHash(len(keys), kind.k)
				for _, k := range keys {
					t.Insert(k, 0)
				}
				st = t.ComputeStats()
			}
			b.ReportMetric(st.AvgChain, "avgChain")
			b.ReportMetric(float64(st.MaxChain), "maxChain")
		})
	}
}

// BenchmarkAblationKSweep shows the Table 1 phenomenon: the same size-9
// query gets exponentially faster as the BFS depth k grows, trading
// memory for search time (the paper's k = 8 vs k = 9 columns).
func BenchmarkAblationKSweep(b *testing.B) {
	target, err := ParseCircuit(
		"TOF(a,b,d) CNOT(c,a) TOF4(a,b,d,c) NOT(b) CNOT(d,b) TOF(b,c,a) CNOT(a,d) TOF(a,c,b) NOT(d)")
	if err != nil {
		b.Fatal(err)
	}
	f := target.Perm()
	for _, k := range []int{4, 5, 6} {
		s, err := core.New(core.Config{K: k})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Synthesize(f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCanonicalize isolates the canonicalization kernel that
// dominates both BFS and the meet-in-the-middle loop: one inversion, 46
// transposition conjugations, 48 comparisons (≈750 machine instructions
// in the paper's count).
func BenchmarkAblationCanonicalize(b *testing.B) {
	gen := randperm.New(7)
	ps := gen.Sample(1024)
	b.ReportAllocs()
	b.ResetTimer()
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= uint64(canon.Rep(ps[i&1023]))
	}
	_ = acc
}

// BenchmarkExtensionCostOptimal covers the paper §5 gate-cost variant:
// building cost-levelled tables with NCV quantum costs and synthesizing a
// cost-optimal circuit.
func BenchmarkExtensionCostOptimal(b *testing.B) {
	a, err := bfs.WeightedGateAlphabet(gate.Gate.QuantumCost)
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.New(core.Config{K: 8, MaxSplit: 5, Alphabet: a})
	if err != nil {
		b.Fatal(err)
	}
	f, err := ParseCircuit("TOF(a,b,c) CNOT(c,d) NOT(a)")
	if err != nil {
		b.Fatal(err)
	}
	p := f.Perm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, info, err := s.SynthesizeInfo(p)
		if err != nil {
			b.Fatal(err)
		}
		if info.Cost != 7 || c.Perm() != p {
			b.Fatalf("quantum cost %d, want 7", info.Cost)
		}
	}
}

// BenchmarkExtensionFiveBit covers the paper §5 five-bit future-work
// item: the reduced 5-bit census to depth 3 (the paper projects k = 6 on
// its 64 GB server) plus a meet-in-the-middle synthesis of the 5-bit
// cyclic shift at its proved-optimal 5 gates.
func BenchmarkExtensionFiveBit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := five.Search(3, true, nil)
		if err != nil {
			b.Fatal(err)
		}
		census := res.LevelCensus()
		want := []int{1, 5, 63, 1691}
		for c, n := range want {
			if census[c] != n {
				b.Fatalf("5-bit reduced census[%d] = %d, want %d", c, census[c], n)
			}
		}
	}
	full, err := five.Search(3, false, nil)
	if err != nil {
		b.Fatal(err)
	}
	var shift five.Perm
	for x := 0; x < five.Size; x++ {
		shift[x] = uint8((x + 1) % five.Size)
	}
	c, err := full.Synthesize(shift)
	if err != nil {
		b.Fatal(err)
	}
	if len(c) != 5 {
		b.Fatalf("shift5 optimum %d, want 5", len(c))
	}
	b.ReportMetric(5, "shift5gates")
}

// BenchmarkExtensionHeuristicLadder measures the §1 quality ladder on a
// fixed random workload: MMD-style heuristic synthesis, template
// rewriting, and the proved optimum (metrics report average gate counts).
func BenchmarkExtensionHeuristicLadder(b *testing.B) {
	s := benchFixture(b)
	db := rewrite.NewDB(6)
	// Functions with witnesses inside the horizon, so the ladder works at
	// any fixture K: random circuits of horizon length.
	gen := mt19937.New(99)
	wlen := s.Horizon()
	if wlen > 10 {
		wlen = 10
	}
	var fs []Perm
	for len(fs) < 16 {
		w := make(Circuit, wlen)
		for j := range w {
			w[j] = gate.FromIndex(gen.Intn(gate.Count))
		}
		fs = append(fs, w.Perm())
	}
	var hSum, rSum, oSum int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := fs[i%len(fs)]
		h, err := heuristic.SynthesizeBidirectional(f)
		if err != nil {
			b.Fatal(err)
		}
		r := db.Apply(h)
		opt, err := s.Size(f)
		if err != nil {
			b.Fatal(err)
		}
		hSum += len(h)
		rSum += len(r)
		oSum += opt
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(hSum)/float64(b.N), "heuristicGates")
		b.ReportMetric(float64(rSum)/float64(b.N), "rewrittenGates")
		b.ReportMetric(float64(oSum)/float64(b.N), "optimalGates")
	}
}

// BenchmarkExtensionTableIO measures the paper's store-once/load-per-run
// workflow at k = 5 (the paper loads its k = 9 tables in 1111 s on CS1).
func BenchmarkExtensionTableIO(b *testing.B) {
	res, err := bfs.Search(bfs.GateAlphabet(), 5, nil)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tablesio.Save(&buf, res); err != nil {
		b.Fatal(err)
	}
	blob := buf.Bytes()
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tablesio.Load(bytes.NewReader(blob), bfs.GateAlphabet()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionDepthOptimal covers the paper §5 depth variant: the
// 103-layer alphabet where NOT(a) CNOT(b,c) is a single step.
func BenchmarkExtensionDepthOptimal(b *testing.B) {
	s, err := core.New(core.Config{K: 3, Alphabet: bfs.LayerAlphabet()})
	if err != nil {
		b.Fatal(err)
	}
	f, err := ParseCircuit("NOT(a) CNOT(b,c) CNOT(a,b) TOF(a,b,d) NOT(c)")
	if err != nil {
		b.Fatal(err)
	}
	p := f.Perm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, info, err := s.SynthesizeInfo(p)
		if err != nil {
			b.Fatal(err)
		}
		if c.Depth() != info.Cost {
			b.Fatalf("emitted depth %d ≠ optimal %d", c.Depth(), info.Cost)
		}
	}
}

// BenchmarkSearchParallel tracks the wall-clock scaling of the sharded
// parallel BFS: the same k = 6 search (1.48M new classes at the last
// level) at increasing worker counts. On a single-core machine the
// workers=1 row is the meaningful one; on ≥ 4 cores the ≥ 2× speedup at
// workers=4 is part of the perf trajectory.
func BenchmarkSearchParallel(b *testing.B) {
	hint := int(bfs.CumulativeGateReduced(6))
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bfs.Search(bfs.GateAlphabet(), 6, &bfs.Options{Workers: w, CapacityHint: hint}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelQueries measures concurrent meet-in-the-middle
// throughput: GOMAXPROCS goroutines hammer one synthesizer over the
// lock-free frozen table (the paper's 16-CPU random-sampling workload,
// §4.1, runs exactly this access pattern).
func BenchmarkParallelQueries(b *testing.B) {
	s := benchFixture(b)
	// One worker per query: RunParallel supplies the concurrency, so the
	// benchmark measures the frozen-table read path, not nested pools.
	s.SetWorkers(1)
	defer s.SetWorkers(0)
	fs := randperm.New(20100602).Sample(512)
	var cursor int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&cursor, 1)
			_, _ = s.Size(fs[int(i)%len(fs)])
		}
	})
}

// BenchmarkMITMWorkers isolates the parallel prefix-scan: one hard
// (beyond-horizon) query answered with different worker-pool sizes.
func BenchmarkMITMWorkers(b *testing.B) {
	s := benchFixture(b)
	bm, ok := BenchmarkByName("hwb4") // size 11: forces a deep split
	if !ok {
		b.Fatal("hwb4 missing from the Table 6 suite")
	}
	if bm.OptimalSize > s.Horizon() {
		b.Skipf("hwb4 beyond horizon %d", s.Horizon())
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			s.SetWorkers(w)
			defer s.SetWorkers(0)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Synthesize(bm.Spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
