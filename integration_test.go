package repro

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gate"
)

// TestPipelineRoundTrip drives the full public workflow: random circuit →
// function → optimal synthesis → print → parse → same function → render.
func TestPipelineRoundTrip(t *testing.T) {
	synth := apiFixture(t)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		witness := make(Circuit, rng.Intn(8))
		for i := range witness {
			witness[i] = gate.FromIndex(rng.Intn(gate.Count))
		}
		f := witness.Perm()
		optimal, err := synth.Synthesize(f)
		if err != nil {
			t.Fatal(err)
		}
		if optimal.Perm() != f {
			t.Fatalf("trial %d: wrong function", trial)
		}
		if len(optimal) > len(witness) {
			t.Fatalf("trial %d: %d gates exceeds witness %d", trial, len(optimal), len(witness))
		}
		reparsed, err := ParseCircuit(optimal.String())
		if err != nil {
			t.Fatalf("trial %d: reparse: %v", trial, err)
		}
		if !reparsed.Equal(optimal) {
			t.Fatalf("trial %d: print/parse changed the circuit", trial)
		}
		if rows := strings.Count(Render(optimal), "\n"); rows != 4 {
			t.Fatalf("trial %d: diagram has %d rows", trial, rows)
		}
	}
}

// TestTable6EndToEnd synthesizes every benchmark within the fixture
// horizon and confirms the proved-optimal size AND that the paper's own
// (verified) circuit is matched in length.
func TestTable6EndToEnd(t *testing.T) {
	synth := apiFixture(t) // K=5, horizon 10
	for _, bm := range Benchmarks() {
		if bm.OptimalSize > synth.Horizon() {
			continue
		}
		c, err := synth.Synthesize(bm.Spec)
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if len(c) != bm.OptimalSize {
			t.Errorf("%s: synthesized %d gates, SOC %d", bm.Name, len(c), bm.OptimalSize)
		}
		if len(c) != len(bm.VerifiedCircuit()) {
			t.Errorf("%s: size disagrees with the verified published circuit", bm.Name)
		}
	}
}

// TestQuickTriangleInequality: size is subadditive under composition,
// size(f ⋄ g) ≤ size(f) + size(g) — concatenating optimal circuits is a
// witness.
func TestQuickTriangleInequality(t *testing.T) {
	synth := apiFixture(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make(Circuit, rng.Intn(5))
		b := make(Circuit, rng.Intn(5))
		for i := range a {
			a[i] = gate.FromIndex(rng.Intn(gate.Count))
		}
		for i := range b {
			b[i] = gate.FromIndex(rng.Intn(gate.Count))
		}
		fa, _ := synth.Size(a.Perm())
		fb, _ := synth.Size(b.Perm())
		joint, err := synth.Size(a.Perm().Then(b.Perm()))
		return err == nil && joint <= fa+fb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSelfInverseFunctionsSynthesize: involutions are their own
// inverses, so synthesis must return circuits whose reversal implements
// the same function.
func TestQuickSelfInverseFunctionsSynthesize(t *testing.T) {
	synth := apiFixture(t)
	f := func(gi1, gi2, gi3 uint8) bool {
		// g1 g2 g3 g2 g1 is always an involution-conjugate... actually a
		// palindrome circuit computes an involution iff the middle gate's
		// conjugate is an involution — which it is (gates are).
		g1 := gate.FromIndex(int(gi1) % gate.Count)
		g2 := gate.FromIndex(int(gi2) % gate.Count)
		g3 := gate.FromIndex(int(gi3) % gate.Count)
		pal := Circuit{g1, g2, g3, g2, g1}
		p := pal.Perm()
		if p.Then(p) != Identity {
			return false // palindromes of involutions must be involutions
		}
		c, err := synth.Synthesize(p)
		if err != nil {
			return false
		}
		return c.Inverse().Perm() == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestHeadlineImprovedBenchmarks documents the paper's headline Table 6
// result end to end: the five circuits the paper shortened versus prior
// art really are shorter, as verified by our own synthesizer where the
// horizon allows and by the verified published circuits everywhere.
func TestHeadlineImprovedBenchmarks(t *testing.T) {
	improved := map[string]int{ // name -> gates saved vs best known
		"decode42": 1, "oc5": 4, "oc6": 2, "oc7": 4, "oc8": 4,
	}
	for name, saved := range improved {
		bm, ok := BenchmarkByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if bm.BestKnownSize-bm.OptimalSize != saved {
			t.Errorf("%s: paper saves %d gates, table says %d", name, bm.BestKnownSize-bm.OptimalSize, saved)
		}
		v := bm.VerifiedCircuit()
		if v.Perm() != bm.Spec || len(v) != bm.OptimalSize {
			t.Errorf("%s: verified circuit inconsistent", name)
		}
	}
}
